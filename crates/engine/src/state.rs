//! Per-machine replica state: the runtime variables §3.2 lists for every
//! replica — `vdata[v]`, `message[v]`, `deltaMsg[v]`, `isActive[v]` (the
//! replica/master topology lives in the shard itself).

use lazygraph_partition::LocalShard;

use crate::parallel::ParallelCtx;
use crate::program::{VertexCtx, VertexProgram};

/// Which replicas receive the program's initial messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitMessages {
    /// Lazy engines: every replica applies the initial message locally
    /// (each replica scatters along its own local edges, covering every
    /// edge exactly once).
    AllReplicas,
    /// Eager engines: apply happens at masters only, so only masters are
    /// pre-loaded.
    MastersOnly,
}

/// The mutable vertex arrays of one machine.
pub struct MachineState<P: VertexProgram> {
    /// Local view of the vertex value, per local replica.
    pub vdata: Vec<P::VData>,
    /// Replica value as of the last data coherency point — the common view
    /// all replicas shared there; used by delta-suppression policies.
    pub coherent: Vec<P::VData>,
    /// Pending gathered messages (`message[v]`).
    pub message: Vec<Option<P::Delta>>,
    /// Delta accumulated from local one-edge-mode receipts since the last
    /// coherency point (`deltaMsg[v]`).
    pub delta_msg: Vec<Option<P::Delta>>,
    /// Activation flag (`isActive[v]`), guarding `queue` membership.
    pub active: Vec<bool>,
    /// Worklist of active local vertices.
    pub queue: Vec<u32>,
    /// Iteration-persistent scratch: a pool of emptied `(l, delta)` vectors
    /// reused across supersteps as [`Self::deliver_all`] buckets,
    /// [`crate::exchange::route_inbound`] segments (same shape — engines
    /// pass `&mut state.seg_scratch` as the router's scratch) and delivery
    /// staging, so steady-state delivery stops re-growing them from zero.
    /// Capacity-only state: contents are always written before being read,
    /// so reuse cannot affect results.
    // lazylint: allow(snapshot-coverage) -- capacity-only pool, always written before read; a recovered worker regrows it from empty with bitwise-identical results
    pub seg_scratch: Vec<Vec<(u32, P::Delta)>>,
    /// Same pool for the lazy path's `(l, delta, fold)` triples:
    /// [`Self::deliver_all_lazy`] buckets and the blocked apply/scatter
    /// sweep's delivery staging vector.
    // lazylint: allow(snapshot-coverage) -- capacity-only pool, always written before read; a recovered worker regrows it from empty with bitwise-identical results
    pub lazy_scratch: Vec<Vec<(u32, P::Delta, bool)>>,
    /// Current pipelined-part size for this machine's streamed sends,
    /// adapted each superstep from the previous superstep's
    /// [`PipelineTiming`](lazygraph_cluster::PipelineTiming) via
    /// [`crate::exchange::adapt_part_items`]. Part boundaries never affect
    /// computed values (any split between distinct local ids preserves the
    /// (sender, part) fold order), but replay regeneration must reproduce
    /// the exact wire stream, so this is snapshot-covered state: captured
    /// in [`EngineSnapshot`](crate::checkpoint::EngineSnapshot) and
    /// restored on rejoin.
    pub part_items: u32,
}

impl<P: VertexProgram> MachineState<P> {
    /// Initialises all local replicas: `vdata` from `initData` and the
    /// worklist from `initMsg` per the engine's [`InitMessages`] policy.
    pub fn init(
        shard: &LocalShard,
        program: &P,
        init: InitMessages,
        num_vertices: usize,
    ) -> Self {
        let n = shard.num_local();
        let mut vdata = Vec::with_capacity(n);
        let mut message = Vec::with_capacity(n);
        let mut active = vec![false; n];
        let mut queue = Vec::new();
        for l in 0..n as u32 {
            let v = shard.global_of(l);
            let ctx = vertex_ctx(shard, l, num_vertices);
            vdata.push(program.init_data(v, &ctx));
            let eligible = match init {
                InitMessages::AllReplicas => true,
                InitMessages::MastersOnly => shard.is_master[l as usize],
            };
            let msg = if eligible {
                program.init_message(v, &ctx)
            } else {
                None
            };
            if msg.is_some() {
                active[l as usize] = true;
                queue.push(l);
            }
            message.push(msg);
        }
        let coherent = vdata.clone();
        MachineState {
            vdata,
            coherent,
            message,
            delta_msg: vec![None; n],
            active,
            queue,
            seg_scratch: Vec::new(),
            lazy_scratch: Vec::new(),
            part_items: crate::exchange::PIPELINE_PART_ITEMS as u32,
        }
    }

    /// Accumulates `d` into `message[l]` and activates `l` if quiet.
    #[inline]
    pub fn deliver(&mut self, program: &P, l: u32, d: P::Delta) {
        let slot = &mut self.message[l as usize];
        *slot = Some(match slot.take() {
            Some(prev) => program.sum(prev, d),
            None => d,
        });
        if !self.active[l as usize] {
            self.active[l as usize] = true;
            self.queue.push(l);
        }
    }

    /// Accumulates `d` into `deltaMsg[l]` (one-edge-mode receipt awaiting
    /// the next coherency point).
    #[inline]
    pub fn accumulate_delta(&mut self, program: &P, l: u32, d: P::Delta) {
        let slot = &mut self.delta_msg[l as usize];
        *slot = Some(match slot.take() {
            Some(prev) => program.sum(prev, d),
            None => d,
        });
    }

    /// Delivers a whole item stream, fanning the accumulation out over the
    /// machine-local pool while staying bitwise-identical to the
    /// sequential left-fold `for (l, d) in items { deliver(l, d) }`.
    ///
    /// The trick is ownership by *target block*: items are bucketed by
    /// `l / block_size` (a stable pass, so each bucket keeps the global
    /// item order), and each block exclusively owns its slice of
    /// `message`/`active`. Every vertex's fold therefore runs as the exact
    /// sequential reduction regardless of schedule — float results cannot
    /// drift with the thread count. Per-block activation lists are
    /// concatenated in block-index order; the path taken depends only on
    /// the item count and block size, never on `ctx.threads()`, so the
    /// worklist order is reproducible too.
    pub fn deliver_all(&mut self, program: &P, ctx: &ParallelCtx, mut items: Vec<(u32, P::Delta)>) {
        let bs = ctx.block_size();
        let num_blocks = self.message.len().div_ceil(bs.max(1));
        if num_blocks <= 1 || items.len() <= 1 {
            for (l, d) in items.drain(..) {
                self.deliver(program, l, d);
            }
            if items.capacity() != 0 {
                self.seg_scratch.push(items);
            }
            return;
        }
        let mut buckets: Vec<Vec<(u32, P::Delta)>> = (0..num_blocks)
            .map(|_| self.seg_scratch.pop().unwrap_or_default())
            .collect();
        for (l, d) in items.drain(..) {
            buckets[l as usize / bs].push((l, d));
        }
        if items.capacity() != 0 {
            self.seg_scratch.push(items);
        }
        struct BlockWork<'a, P: VertexProgram> {
            base: usize,
            message: &'a mut [Option<P::Delta>],
            active: &'a mut [bool],
            items: Vec<(u32, P::Delta)>,
        }
        let mut work: Vec<BlockWork<'_, P>> = Vec::new();
        let mut msg_rest = self.message.as_mut_slice();
        let mut act_rest = self.active.as_mut_slice();
        for (b, items) in buckets.into_iter().enumerate() {
            let take = bs.min(msg_rest.len());
            let (msg_chunk, m_rest) = msg_rest.split_at_mut(take);
            let (act_chunk, a_rest) = act_rest.split_at_mut(take);
            msg_rest = m_rest;
            act_rest = a_rest;
            if !items.is_empty() {
                work.push(BlockWork {
                    base: b * bs,
                    message: msg_chunk,
                    active: act_chunk,
                    items,
                });
            } else if items.capacity() != 0 {
                self.seg_scratch.push(items);
            }
        }
        // Tasks drain (not consume) their item vectors so the capacity can
        // rejoin the scratch pool for the next superstep.
        #[allow(clippy::type_complexity)]
        let activated: Vec<(Vec<u32>, Vec<(u32, P::Delta)>)> = ctx.pool().map(work, |w| {
            let BlockWork {
                base,
                message,
                active,
                mut items,
            } = w;
            let mut newly = Vec::new();
            for (l, d) in items.drain(..) {
                let i = l as usize - base;
                let slot = &mut message[i];
                *slot = Some(match slot.take() {
                    Some(prev) => program.sum(prev, d),
                    None => d,
                });
                if !active[i] {
                    active[i] = true;
                    newly.push(l);
                }
            }
            (newly, items)
        });
        for (block, emptied) in activated {
            self.queue.extend(block);
            if emptied.capacity() != 0 {
                self.seg_scratch.push(emptied);
            }
        }
    }

    /// [`Self::deliver_all`] for the lazy engines: each item optionally
    /// also folds into `deltaMsg[l]` (one-edge-mode receipt on a
    /// replicated target). Same target-block ownership, same bitwise
    /// guarantee — `message`, `delta_msg` and `active` are chunked
    /// together so a block owns every array it touches.
    ///
    /// Returns the number of items folded into an *occupied* `deltaMsg`
    /// slot: each such fold is one contribution the coherency exchange
    /// will not ship as its own wire item (the sender-side combining the
    /// fast path counts as `items_combined`).
    pub fn deliver_all_lazy(
        &mut self,
        program: &P,
        ctx: &ParallelCtx,
        mut items: Vec<(u32, P::Delta, bool)>,
    ) -> u64 {
        let bs = ctx.block_size();
        let num_blocks = self.message.len().div_ceil(bs.max(1));
        if num_blocks <= 1 || items.len() <= 1 {
            let mut folds = 0u64;
            for (l, d, fold_delta) in items.drain(..) {
                self.deliver(program, l, d);
                if fold_delta {
                    folds += u64::from(self.delta_msg[l as usize].is_some());
                    self.accumulate_delta(program, l, d);
                }
            }
            if items.capacity() != 0 {
                self.lazy_scratch.push(items);
            }
            return folds;
        }
        let mut buckets: Vec<Vec<(u32, P::Delta, bool)>> = (0..num_blocks)
            .map(|_| self.lazy_scratch.pop().unwrap_or_default())
            .collect();
        for (l, d, f) in items.drain(..) {
            buckets[l as usize / bs].push((l, d, f));
        }
        if items.capacity() != 0 {
            self.lazy_scratch.push(items);
        }
        struct BlockWork<'a, P: VertexProgram> {
            base: usize,
            message: &'a mut [Option<P::Delta>],
            delta_msg: &'a mut [Option<P::Delta>],
            active: &'a mut [bool],
            items: Vec<(u32, P::Delta, bool)>,
        }
        let mut work: Vec<BlockWork<'_, P>> = Vec::new();
        let mut msg_rest = self.message.as_mut_slice();
        let mut dm_rest = self.delta_msg.as_mut_slice();
        let mut act_rest = self.active.as_mut_slice();
        for (b, items) in buckets.into_iter().enumerate() {
            let take = bs.min(msg_rest.len());
            let (msg_chunk, m_rest) = msg_rest.split_at_mut(take);
            let (dm_chunk, d_rest) = dm_rest.split_at_mut(take);
            let (act_chunk, a_rest) = act_rest.split_at_mut(take);
            msg_rest = m_rest;
            dm_rest = d_rest;
            act_rest = a_rest;
            if !items.is_empty() {
                work.push(BlockWork {
                    base: b * bs,
                    message: msg_chunk,
                    delta_msg: dm_chunk,
                    active: act_chunk,
                    items,
                });
            } else if items.capacity() != 0 {
                self.lazy_scratch.push(items);
            }
        }
        #[allow(clippy::type_complexity)]
        let activated: Vec<(Vec<u32>, u64, Vec<(u32, P::Delta, bool)>)> = ctx.pool().map(work, |w| {
            let BlockWork {
                base,
                message,
                delta_msg,
                active,
                mut items,
            } = w;
            let mut newly = Vec::new();
            let mut folds = 0u64;
            for (l, d, fold_delta) in items.drain(..) {
                let i = l as usize - base;
                let slot = &mut message[i];
                *slot = Some(match slot.take() {
                    Some(prev) => program.sum(prev, d),
                    None => d,
                });
                if !active[i] {
                    active[i] = true;
                    newly.push(l);
                }
                if fold_delta {
                    let slot = &mut delta_msg[i];
                    *slot = Some(match slot.take() {
                        Some(prev) => {
                            folds += 1;
                            program.sum(prev, d)
                        }
                        None => d,
                    });
                }
            }
            (newly, folds, items)
        });
        let mut folds = 0u64;
        for (block, f, emptied) in activated {
            self.queue.extend(block);
            folds += f;
            if emptied.capacity() != 0 {
                self.lazy_scratch.push(emptied);
            }
        }
        folds
    }

    /// Delivers pre-bucketed per-block *segment lists* — the sink of the
    /// exchange fast path's parallel inbound router
    /// ([`crate::exchange::route_inbound`]), which already grouped items by
    /// target block so no second bucketing pass is needed here.
    ///
    /// `segments[b]` holds block `b`'s item runs in canonical (sender)
    /// order; folding the runs in order is bitwise-identical to the serial
    /// left-fold over their concatenation, by the same target-block
    /// ownership argument as [`Self::deliver_all`]. The blocking must
    /// match the router's: `segments.len()` is
    /// `message.len().div_ceil(block_size).max(1)`.
    ///
    /// The fold is *run-vectorized*: a maximal run of consecutive items
    /// with the same target loads the slot once, folds the run's deltas
    /// left-to-right (`((slot ⊕ d₁) ⊕ d₂) ⊕ …` — exactly the per-item
    /// delivery order, so no float re-association), and stores once.
    /// Runs deliberately span *segment boundaries*: sender-side combining
    /// means a gid appears at most once per inbound batch (= per
    /// segment), so a high-degree vertex's deltas from k senders land in
    /// k consecutive segments of its block, not k consecutive items of
    /// one segment. The loaded slot stays open across the boundary and
    /// only stores when the target changes. Returns the number of
    /// vectorized runs (length ≥ 2) folded — the engines record it as
    /// `fold_runs` in [`NetStats`](lazygraph_cluster::NetStats).
    pub fn deliver_segments(
        &mut self,
        program: &P,
        ctx: &ParallelCtx,
        segments: crate::exchange::RoutedSegments<P::Delta>,
    ) -> u64 {
        let bs = ctx.block_size();
        let num_blocks = self.message.len().div_ceil(bs.max(1)).max(1);
        debug_assert_eq!(segments.len(), num_blocks, "router/deliver blocking mismatch");
        struct BlockWork<'a, P: VertexProgram> {
            base: usize,
            message: &'a mut [Option<P::Delta>],
            active: &'a mut [bool],
            segments: Vec<Vec<(u32, P::Delta)>>,
        }
        let mut work: Vec<BlockWork<'_, P>> = Vec::new();
        let mut msg_rest = self.message.as_mut_slice();
        let mut act_rest = self.active.as_mut_slice();
        for (b, segments) in segments.into_iter().enumerate() {
            let take = bs.min(msg_rest.len());
            let (msg_chunk, m_rest) = msg_rest.split_at_mut(take);
            let (act_chunk, a_rest) = act_rest.split_at_mut(take);
            msg_rest = m_rest;
            act_rest = a_rest;
            if segments.iter().any(|s| !s.is_empty()) {
                work.push(BlockWork {
                    base: b * bs,
                    message: msg_chunk,
                    active: act_chunk,
                    segments,
                });
            }
        }
        // Segments are drained, not consumed: their capacity flows back
        // into `seg_scratch`, where the next superstep's `route_inbound`
        // pass picks it up as fresh buckets.
        #[allow(clippy::type_complexity)]
        let activated: Vec<(Vec<u32>, u64, Vec<Vec<(u32, P::Delta)>>)> = ctx.pool().map(work, |w| {
            let BlockWork {
                base,
                message,
                active,
                mut segments,
            } = w;
            // Store the open run's accumulator back and account for it.
            fn flush<P: VertexProgram>(
                base: usize,
                message: &mut [Option<P::Delta>],
                active: &mut [bool],
                newly: &mut Vec<u32>,
                runs: &mut u64,
                (l, acc, n): (u32, P::Delta, u64),
            ) {
                let idx = l as usize - base;
                message[idx] = Some(acc);
                if !active[idx] {
                    active[idx] = true;
                    newly.push(l);
                }
                *runs += u64::from(n >= 2);
            }
            let mut newly = Vec::new();
            let mut runs = 0u64;
            // Open run: (target, loaded-and-folded accumulator, length).
            // Kept across the segment loop so a run continues through a
            // segment boundary; stored only when the target changes.
            let mut open: Option<(u32, P::Delta, u64)> = None;
            for segment in &mut segments {
                for &(l, d) in segment.iter() {
                    open = Some(match open.take() {
                        Some((ol, acc, n)) if ol == l => (l, program.sum(acc, d), n + 1),
                        prev => {
                            if let Some(run) = prev {
                                flush::<P>(base, message, active, &mut newly, &mut runs, run);
                            }
                            let idx = l as usize - base;
                            let acc = match message[idx].take() {
                                Some(prev) => program.sum(prev, d),
                                None => d,
                            };
                            (l, acc, 1)
                        }
                    });
                }
                segment.clear();
            }
            if let Some(run) = open {
                flush::<P>(base, message, active, &mut newly, &mut runs, run);
            }
            (newly, runs, segments)
        });
        let mut fold_runs = 0u64;
        for (block, runs, segments) in activated {
            self.queue.extend(block);
            fold_runs += runs;
            for s in segments {
                if s.capacity() != 0 {
                    self.seg_scratch.push(s);
                }
            }
        }
        fold_runs
    }

    /// Number of local replicas with a pending message.
    pub fn pending_messages(&self) -> u64 {
        self.message.iter().filter(|m| m.is_some()).count() as u64
    }

    /// Takes the current worklist, leaving an empty one (one sub-round).
    pub fn take_queue(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.queue)
    }
}

/// Builds the [`VertexCtx`] of local vertex `l` from shard metadata.
#[inline]
pub fn vertex_ctx(shard: &LocalShard, l: u32, num_vertices: usize) -> VertexCtx {
    VertexCtx {
        out_degree: shard.global_out_degree[l as usize],
        in_degree: shard.global_in_degree[l as usize],
        degree: shard.global_degree[l as usize],
        num_vertices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::EdgeCtx;
    use lazygraph_graph::generators::{rmat, RmatConfig};
    use lazygraph_graph::VertexId;
    use lazygraph_partition::{partition_graph, PartitionStrategy, SplitterConfig};

    struct P0;
    impl VertexProgram for P0 {
        type VData = u32;
        type Delta = u32;
        fn name(&self) -> &'static str {
            "p0"
        }
        fn init_data(&self, v: VertexId, _c: &VertexCtx) -> u32 {
            v.0
        }
        fn init_message(&self, v: VertexId, _c: &VertexCtx) -> Option<u32> {
            v.0.is_multiple_of(2).then_some(1)
        }
        fn sum(&self, a: u32, b: u32) -> u32 {
            a + b
        }
        fn inverse(&self, accum: u32, a: u32) -> u32 {
            accum - a
        }
        fn apply(&self, _v: VertexId, d: &mut u32, a: u32, _c: &VertexCtx) -> Option<u32> {
            *d += a;
            None
        }
        fn scatter(
            &self,
            _v: VertexId,
            _d: &u32,
            x: u32,
            _c: &VertexCtx,
            _e: &EdgeCtx,
        ) -> Option<u32> {
            Some(x)
        }
    }

    fn dist() -> lazygraph_partition::DistributedGraph {
        let g = rmat(RmatConfig::graph500(8, 6, 1));
        partition_graph(
            &g,
            4,
            PartitionStrategy::Coordinated,
            &SplitterConfig::disabled(),
            false,
        )
    }

    #[test]
    fn init_all_replicas_activates_even_vertices() {
        let dg = dist();
        for shard in &dg.shards {
            let st = MachineState::init(shard, &P0, InitMessages::AllReplicas, dg.num_global_vertices);
            for l in 0..shard.num_local() as u32 {
                let v = shard.global_of(l);
                assert_eq!(st.vdata[l as usize], v.0);
                assert_eq!(st.message[l as usize].is_some(), v.0 % 2 == 0);
                assert_eq!(st.active[l as usize], v.0 % 2 == 0);
            }
        }
    }

    #[test]
    fn init_masters_only_restricts_activation() {
        let dg = dist();
        for shard in &dg.shards {
            let st = MachineState::init(shard, &P0, InitMessages::MastersOnly, dg.num_global_vertices);
            for l in 0..shard.num_local() as u32 {
                let v = shard.global_of(l);
                let expect = v.0 % 2 == 0 && shard.is_master[l as usize];
                assert_eq!(st.message[l as usize].is_some(), expect);
            }
        }
    }

    #[test]
    fn deliver_accumulates_and_activates_once() {
        let dg = dist();
        let shard = &dg.shards[0];
        let mut st = MachineState::init(shard, &P0, InitMessages::MastersOnly, dg.num_global_vertices);
        // Find an odd (inactive) vertex.
        let l = (0..shard.num_local() as u32)
            .find(|&l| st.message[l as usize].is_none())
            .unwrap();
        let before = st.queue.len();
        st.deliver(&P0, l, 5);
        st.deliver(&P0, l, 7);
        assert_eq!(st.message[l as usize], Some(12));
        assert_eq!(st.queue.len(), before + 1, "activated exactly once");
    }

    #[test]
    fn delta_accumulation() {
        let dg = dist();
        let shard = &dg.shards[0];
        let mut st = MachineState::init(shard, &P0, InitMessages::MastersOnly, dg.num_global_vertices);
        st.accumulate_delta(&P0, 0, 3);
        st.accumulate_delta(&P0, 0, 4);
        assert_eq!(st.delta_msg[0], Some(7));
        // deltaMsg does not activate.
        assert!(!st.active[0] || st.message[0].is_some());
    }

    #[test]
    fn deliver_all_matches_sequential_left_fold() {
        use crate::parallel::{ParallelConfig, ParallelCtx};

        struct FSum;
        impl VertexProgram for FSum {
            type VData = f64;
            type Delta = f64;
            fn name(&self) -> &'static str {
                "fsum"
            }
            fn init_data(&self, _v: VertexId, _c: &VertexCtx) -> f64 {
                0.0
            }
            fn init_message(&self, _v: VertexId, _c: &VertexCtx) -> Option<f64> {
                None
            }
            fn sum(&self, a: f64, b: f64) -> f64 {
                a + b
            }
            fn inverse(&self, accum: f64, a: f64) -> f64 {
                accum - a
            }
            fn apply(&self, _v: VertexId, d: &mut f64, a: f64, _c: &VertexCtx) -> Option<f64> {
                *d += a;
                None
            }
            fn scatter(
                &self,
                _v: VertexId,
                _d: &f64,
                x: f64,
                _c: &VertexCtx,
                _e: &EdgeCtx,
            ) -> Option<f64> {
                Some(x)
            }
        }

        let dg = dist();
        let shard = &dg.shards[0];
        let n = shard.num_local() as u32;
        // Awkward magnitudes on purpose: float addition is order-sensitive,
        // so any fold-order deviation shows up bitwise.
        let items: Vec<(u32, f64)> = (0..4096u64)
            .map(|i| {
                let l = (i.wrapping_mul(2654435761) % n as u64) as u32;
                (l, ((i * 37) % 1000) as f64 * 1e-3 + (i % 7) as f64 * 1e12)
            })
            .collect();
        let mut reference =
            MachineState::init(shard, &FSum, InitMessages::MastersOnly, dg.num_global_vertices);
        for &(l, d) in &items {
            reference.deliver(&FSum, l, d);
        }
        for threads in [1, 2, 8] {
            for block_size in [1, 16, 1024] {
                let ctx = ParallelCtx::new(ParallelConfig {
                    threads,
                    block_size,
                });
                let mut st = MachineState::init(
                    shard,
                    &FSum,
                    InitMessages::MastersOnly,
                    dg.num_global_vertices,
                );
                st.deliver_all(&FSum, &ctx, items.clone());
                let bits = |m: &Vec<Option<f64>>| -> Vec<Option<u64>> {
                    m.iter().map(|o| o.map(f64::to_bits)).collect()
                };
                assert_eq!(
                    bits(&st.message),
                    bits(&reference.message),
                    "threads={threads} block_size={block_size}"
                );
                assert_eq!(st.active, reference.active);
                let mut q = st.queue.clone();
                q.sort_unstable();
                let mut rq = reference.queue.clone();
                rq.sort_unstable();
                assert_eq!(q, rq);
            }
        }
    }

    #[test]
    fn deliver_segments_matches_deliver_all() {
        use crate::parallel::{ParallelConfig, ParallelCtx};

        let dg = dist();
        let shard = &dg.shards[0];
        let n = shard.num_local() as u32;
        let items: Vec<(u32, u32)> = (0..2048u64)
            .map(|i| ((i.wrapping_mul(40503) % n as u64) as u32, (i % 13) as u32 + 1))
            .collect();
        for (threads, block_size) in [(1, 64), (4, 64), (4, 1), (2, 4096)] {
            let ctx = ParallelCtx::new(ParallelConfig {
                threads,
                block_size,
            });
            let mut reference =
                MachineState::init(shard, &P0, InitMessages::MastersOnly, dg.num_global_vertices);
            reference.deliver_all(&P0, &ctx, items.clone());
            // Bucket by block into two segments per block (split mid-stream),
            // preserving item order within the concatenation.
            let bs = block_size.max(1);
            let num_blocks = (n as usize).div_ceil(bs).max(1);
            let mut segments: Vec<Vec<Vec<(u32, u32)>>> =
                (0..num_blocks).map(|_| vec![Vec::new(), Vec::new()]).collect();
            for (i, &(l, d)) in items.iter().enumerate() {
                let seg = usize::from(i >= items.len() / 2);
                segments[l as usize / bs][seg].push((l, d));
            }
            let mut st =
                MachineState::init(shard, &P0, InitMessages::MastersOnly, dg.num_global_vertices);
            st.deliver_segments(&P0, &ctx, segments);
            assert_eq!(st.message, reference.message, "threads={threads} bs={block_size}");
            assert_eq!(st.active, reference.active);
            let mut q = st.queue.clone();
            q.sort_unstable();
            let mut rq = reference.queue.clone();
            rq.sort_unstable();
            assert_eq!(q, rq);
        }
    }

    #[test]
    fn deliver_all_lazy_counts_occupied_folds() {
        use crate::parallel::{ParallelConfig, ParallelCtx};

        let dg = dist();
        let shard = &dg.shards[0];
        // Three folding items on one vertex: first lands in an empty slot,
        // the next two fold — two wire items saved.
        let items = vec![(0u32, 1u32, true), (0, 2, true), (0, 3, true), (1, 4, false)];
        for threads in [1, 4] {
            let ctx = ParallelCtx::new(ParallelConfig {
                threads,
                block_size: 1,
            });
            let mut st =
                MachineState::init(shard, &P0, InitMessages::MastersOnly, dg.num_global_vertices);
            st.delta_msg.iter_mut().for_each(|s| *s = None);
            let folds = st.deliver_all_lazy(&P0, &ctx, items.clone());
            assert_eq!(folds, 2, "threads={threads}");
            assert_eq!(st.delta_msg[0], Some(6));
            assert_eq!(st.delta_msg[1], None);
        }
        // Serial fallback path (single item) reports zero folds.
        let ctx = ParallelCtx::new(ParallelConfig::sequential());
        let mut st =
            MachineState::init(shard, &P0, InitMessages::MastersOnly, dg.num_global_vertices);
        assert_eq!(st.deliver_all_lazy(&P0, &ctx, vec![(0, 1, true)]), 0);
    }

    #[test]
    fn delivery_scratch_cycles_instead_of_growing() {
        use crate::parallel::{ParallelConfig, ParallelCtx};

        let dg = dist();
        let shard = &dg.shards[0];
        let n = shard.num_local() as u32;
        let ctx = ParallelCtx::new(ParallelConfig {
            threads: 2,
            block_size: 16,
        });
        let mut st =
            MachineState::init(shard, &P0, InitMessages::MastersOnly, dg.num_global_vertices);
        let items: Vec<(u32, u32)> = (0..256u32).map(|i| (i % n, 1)).collect();
        st.deliver_all(&P0, &ctx, items.clone());
        let pooled = st.seg_scratch.len();
        let cap: usize = st.seg_scratch.iter().map(Vec::capacity).sum();
        assert!(pooled > 0, "first superstep seeds the pool");
        assert!(cap > 0, "pooled vectors keep their grown capacity");
        // Steady state mirrors the engines: each superstep's staging vector
        // is itself drawn from the pool, so the pool cycles without growing.
        for _ in 0..3 {
            let mut batch = st.seg_scratch.pop().unwrap_or_default();
            batch.extend(items.iter().copied());
            st.deliver_all(&P0, &ctx, batch);
        }
        assert!(st.seg_scratch.len() <= pooled + 1, "pool must not grow per superstep");

        let lazy_items: Vec<(u32, u32, bool)> = (0..256u32).map(|i| (i % n, 1, false)).collect();
        st.deliver_all_lazy(&P0, &ctx, lazy_items.clone());
        let lazy_pooled = st.lazy_scratch.len();
        assert!(lazy_pooled > 0);
        for _ in 0..3 {
            let mut batch = st.lazy_scratch.pop().unwrap_or_default();
            batch.extend(lazy_items.iter().copied());
            st.deliver_all_lazy(&P0, &ctx, batch);
        }
        assert!(st.lazy_scratch.len() <= lazy_pooled + 1);
    }

    #[test]
    fn pending_counts() {
        let dg = dist();
        let shard = &dg.shards[0];
        let mut st = MachineState::init(shard, &P0, InitMessages::AllReplicas, dg.num_global_vertices);
        let pending = st.pending_messages();
        let evens = (0..shard.num_local() as u32)
            .filter(|&l| shard.global_of(l).0.is_multiple_of(2))
            .count() as u64;
        assert_eq!(pending, evens);
        let q = st.take_queue();
        assert_eq!(q.len() as u64, pending);
        assert!(st.queue.is_empty());
    }
}
