//! The zero-allocation exchange fast path shared by the engines.
//!
//! Every coherency point (and every sync-engine phase) is an exchange of
//! keyed delta items, and three per-item costs used to dominate it:
//! fresh outbox allocation each phase, a serial hash lookup per inbound
//! item, and bucketing each item twice (once to translate, once inside
//! `deliver_all`). The fast path removes all three:
//!
//! 1. **Pooled outboxes** — engines stage into a persistent
//!    [`OutboxSet`](lazygraph_cluster::OutboxSet); `Endpoint::exchange`
//!    refills each shipped slot from the endpoint's buffer pool, and
//!    receivers [`recycle`](lazygraph_cluster::Endpoint::recycle) drained
//!    batches back to their senders, so steady-state rounds allocate
//!    nothing.
//! 2. **Sender-side combining** ([`stage_combining`]) — consecutive items
//!    staged for the same `(dst, gid)` fold with `program.sum` before
//!    they ever reach the wire. Engines stage in canonical (ascending
//!    local id) order, so adjacent-run combining is exhaustive per key
//!    and the receiver's left-fold association is unchanged.
//! 3. **Parallel inbound routing** ([`route_inbound`]) — one block-parallel
//!    translate-and-bucket pass over the received batches, feeding
//!    [`MachineState::deliver_segments`](crate::state::MachineState::deliver_segments)
//!    directly. The gid → local translation reads the shard's dense route
//!    table (`LocalShard::local_of`, an array index since PR 3), not a
//!    hash map.
//!
//! Determinism: the router preserves (batch order, item order) within
//! each target block, and batches arrive sorted by sender, so per-vertex
//! fold order is exactly the serial translate-then-deliver order —
//! bitwise-identical at any thread count. DESIGN.md §9 is the full
//! contract.

use lazygraph_cluster::Batch;

use crate::parallel::ParallelCtx;
use crate::program::VertexProgram;

/// Routed inbound items: `[target block][segment][item]`, where each
/// segment is one batch's contribution to that block, in batch order.
/// Consumed by
/// [`MachineState::deliver_segments`](crate::state::MachineState::deliver_segments).
pub type RoutedSegments<D> = Vec<Vec<Vec<(u32, D)>>>;

/// Stages `(gid, d)` for `dst`, folding into the previously staged item
/// when it carries the same gid (sender-side `⊕` combining). Returns
/// `true` iff the item was folded rather than pushed — the caller counts
/// those into [`NetStats::record_combined`](lazygraph_cluster::NetStats).
///
/// Only *adjacent* duplicates combine, which is exhaustive because every
/// engine stages its coherency decisions in ascending local-id order
/// (equal to ascending gid order within a destination). Folding adjacent
/// items of a stream never changes the receiver's left-fold result for
/// an associative `⊕`, so combined and uncombined streams deliver
/// bitwise-identical accumulators.
#[inline]
pub fn stage_combining<P: VertexProgram>(
    program: &P,
    outboxes: &mut lazygraph_cluster::OutboxSet<(u32, P::Delta)>,
    dst: usize,
    gid: u32,
    d: P::Delta,
) -> bool {
    if let Some((last_gid, last_d)) = outboxes.last_mut(dst) {
        if *last_gid == gid {
            *last_d = program.sum(*last_d, d);
            return true;
        }
    }
    outboxes.push(dst, (gid, d));
    false
}

/// Block-parallel translate-and-bucket over received batches: the
/// replacement for the serial per-item `local_of` + push loop.
///
/// Each batch is drained by one pool task (batches are disjoint, so this
/// needs no locking); every item goes through `translate` — typically a
/// dense route-table lookup plus `program.gather` — and lands in that
/// task's per-block bucket. `translate` returning `None` drops the item
/// (unroutable or filtered), keeping the hot loop panic-free. The
/// per-batch buckets are then stitched into per-block *segment lists* in
/// batch order, ready for
/// [`MachineState::deliver_segments`](crate::state::MachineState::deliver_segments):
/// no second bucketing pass, and per-vertex fold order is identical to
/// translating the batches serially in order.
///
/// Drained batches keep their capacity; the caller recycles them back to
/// their senders via [`Endpoint::recycle`](lazygraph_cluster::Endpoint::recycle).
pub fn route_inbound<T, D, F>(
    pctx: &ParallelCtx,
    num_local: usize,
    batches: &mut [Batch<T>],
    translate: F,
) -> RoutedSegments<D>
where
    T: Send,
    D: Send,
    F: Fn(T) -> Option<(u32, D)> + Sync,
{
    let bs = pctx.block_size().max(1);
    let num_blocks = num_local.div_ceil(bs).max(1);
    let per_batch: Vec<Vec<Vec<(u32, D)>>> = pctx.pool().map(
        batches.iter_mut().collect::<Vec<_>>(),
        |batch| {
            let mut buckets: Vec<Vec<(u32, D)>> = (0..num_blocks).map(|_| Vec::new()).collect();
            for item in batch.items.drain(..) {
                if let Some((l, d)) = translate(item) {
                    // Out-of-range l means a corrupt route table; drop
                    // rather than panic in the hot loop (debug builds
                    // still catch it in deliver_segments).
                    if let Some(bucket) = buckets.get_mut(l as usize / bs) {
                        bucket.push((l, d));
                    }
                }
            }
            buckets
        },
    );
    // Transpose [batch][block] → [block][segment], batch order preserved.
    let mut per_block: RoutedSegments<D> = (0..num_blocks).map(|_| Vec::new()).collect();
    for buckets in per_batch {
        for (b, segment) in buckets.into_iter().enumerate() {
            if !segment.is_empty() {
                per_block[b].push(segment);
            }
        }
    }
    per_block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{ParallelConfig, ParallelCtx};
    use crate::program::{EdgeCtx, VertexCtx};
    use lazygraph_cluster::OutboxSet;
    use lazygraph_graph::VertexId;

    struct Sum;
    impl VertexProgram for Sum {
        type VData = u64;
        type Delta = u64;
        fn name(&self) -> &'static str {
            "sum"
        }
        fn init_data(&self, _v: VertexId, _c: &VertexCtx) -> u64 {
            0
        }
        fn init_message(&self, _v: VertexId, _c: &VertexCtx) -> Option<u64> {
            None
        }
        fn sum(&self, a: u64, b: u64) -> u64 {
            a + b
        }
        fn inverse(&self, accum: u64, a: u64) -> u64 {
            accum - a
        }
        fn apply(&self, _v: VertexId, d: &mut u64, a: u64, _c: &VertexCtx) -> Option<u64> {
            *d += a;
            None
        }
        fn scatter(
            &self,
            _v: VertexId,
            _d: &u64,
            x: u64,
            _c: &VertexCtx,
            _e: &EdgeCtx,
        ) -> Option<u64> {
            Some(x)
        }
    }

    #[test]
    fn stage_combining_folds_adjacent_keys_only() {
        let mut out = OutboxSet::new(2);
        assert!(!stage_combining(&Sum, &mut out, 1, 7, 10));
        assert!(stage_combining(&Sum, &mut out, 1, 7, 5)); // adjacent dup folds
        assert!(!stage_combining(&Sum, &mut out, 1, 9, 1));
        assert!(!stage_combining(&Sum, &mut out, 1, 7, 2)); // non-adjacent: new item
        assert!(!stage_combining(&Sum, &mut out, 0, 7, 3)); // other dst untouched
        assert_eq!(out.staged(1), &[(7, 15), (9, 1), (7, 2)]);
        assert_eq!(out.staged(0), &[(7, 3)]);
    }

    #[test]
    fn route_inbound_preserves_batch_then_item_order() {
        // 3 batches (already sender-sorted), gid == local id, 2 blocks.
        let mk = |from: usize, items: Vec<(u32, u64)>| Batch {
            from,
            sent_at: 0.0,
            round: 0,
            items,
        };
        for threads in [1, 4] {
            let pctx = ParallelCtx::new(ParallelConfig {
                threads,
                block_size: 4,
            });
            let mut batches = vec![
                mk(0, vec![(0, 1), (5, 2), (1, 3)]),
                mk(1, vec![(5, 4), (0, 5)]),
                mk(2, vec![(7, 6)]),
            ];
            let segments = route_inbound(&pctx, 8, &mut batches, |(gid, d): (u32, u64)| {
                Some((gid, d * 10))
            });
            assert_eq!(segments.len(), 2);
            // Block 0: batch 0's items in order, then batch 1's.
            assert_eq!(segments[0], vec![vec![(0, 10), (1, 30)], vec![(0, 50)]]);
            // Block 1 gets one segment per contributing batch, in order.
            assert_eq!(segments[1], vec![vec![(5, 20)], vec![(5, 40)], vec![(7, 60)]]);
            // Batches were drained in place (capacity recyclable).
            assert!(batches.iter().all(|b| b.items.is_empty()));
        }
    }

    #[test]
    fn route_inbound_drops_untranslatable_items() {
        let pctx = ParallelCtx::new(ParallelConfig {
            threads: 2,
            block_size: 4,
        });
        let mut batches = vec![Batch {
            from: 0,
            sent_at: 0.0,
            round: 0,
            items: vec![(0u32, 1u64), (99, 2), (3, 3)],
        }];
        let segments = route_inbound(&pctx, 4, &mut batches, |(gid, d): (u32, u64)| {
            (gid < 4).then_some((gid, d))
        });
        assert_eq!(segments, vec![vec![vec![(0, 1), (3, 3)]]]);
    }
}
