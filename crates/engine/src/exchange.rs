//! The zero-allocation exchange fast path shared by the engines.
//!
//! Every coherency point (and every sync-engine phase) is an exchange of
//! keyed delta items, and three per-item costs used to dominate it:
//! fresh outbox allocation each phase, a serial hash lookup per inbound
//! item, and bucketing each item twice (once to translate, once inside
//! `deliver_all`). The fast path removes all three:
//!
//! 1. **Pooled outboxes** — engines stage into a persistent
//!    [`OutboxSet`](lazygraph_cluster::OutboxSet); `Endpoint::exchange`
//!    refills each shipped slot from the endpoint's buffer pool, and
//!    receivers [`recycle`](lazygraph_cluster::Endpoint::recycle) drained
//!    batches back to their senders, so steady-state rounds allocate
//!    nothing.
//! 2. **Sender-side combining** ([`stage_combining`]) — consecutive items
//!    staged for the same `(dst, gid)` fold with `program.sum` before
//!    they ever reach the wire. Engines stage in canonical (ascending
//!    local id) order, so adjacent-run combining is exhaustive per key
//!    and the receiver's left-fold association is unchanged.
//! 3. **Parallel inbound routing** ([`route_inbound`]) — one block-parallel
//!    translate-and-bucket pass over the received batches, feeding
//!    [`MachineState::deliver_segments`](crate::state::MachineState::deliver_segments)
//!    directly. The gid → local translation reads the shard's dense route
//!    table (`LocalShard::local_of`, an array index since PR 3), not a
//!    hash map.
//!
//! Determinism: the router preserves (batch order, item order) within
//! each target block, and batches arrive sorted by sender, so per-vertex
//! fold order is exactly the serial translate-then-deliver order —
//! bitwise-identical at any thread count. DESIGN.md §9 is the full
//! contract.

use lazygraph_cluster::Batch;
use lazygraph_net::{Wire, WireReader};

use crate::parallel::ParallelCtx;
use crate::program::VertexProgram;

/// Routed inbound items: `[target block][segment][item]`, where each
/// segment is one batch's contribution to that block, in batch order.
/// Consumed by
/// [`MachineState::deliver_segments`](crate::state::MachineState::deliver_segments).
pub type RoutedSegments<D> = Vec<Vec<Vec<(u32, D)>>>;

/// Staged-item threshold at which the pipelined engines flush a
/// destination's outbox as a streamed part
/// ([`Endpoint::stream_part`](lazygraph_cluster::Endpoint)). Chosen so a
/// PageRank-sized delta part encodes to roughly one socket write's worth
/// of payload; correctness is threshold-independent (any split between
/// distinct local ids preserves fold order).
pub const PIPELINE_PART_ITEMS: usize = 1024;

/// Lower clamp for adaptive part sizing: below this, per-part framing
/// overhead (header + flush syscall) dominates the payload.
pub const PART_ITEMS_MIN: u32 = 256;

/// Upper clamp for adaptive part sizing: above this, a part holds enough
/// of the round that the receiver's eager drain loses its overlap window.
pub const PART_ITEMS_MAX: u32 = 16384;

/// One step of the adaptive part-size controller, run from the previous
/// superstep's [`PipelineTiming`](lazygraph_cluster::PipelineTiming):
///
/// - sends blocked longer than routing overlapped (`send_wait > overlap`)
///   → parts are too big for the socket, halve;
/// - sends essentially never blocked (`send_wait < overlap / 10`)
///   → framing overhead dominates, double to amortise it;
/// - otherwise hold.
///
/// Pure and clamped to `[PART_ITEMS_MIN, PART_ITEMS_MAX]`, so the
/// part-size trajectory is a deterministic function of the measured
/// timings — and because any part split between distinct local ids
/// preserves the (sender, part) fold order, the *values* computed are
/// invariant to whatever trajectory the timings produce. NaN or negative
/// timings (never produced, but wall-clock is untrusted input) hold the
/// current size.
pub fn adapt_part_items(cur: u32, send_wait_ms: f64, overlap_ms: f64) -> u32 {
    let next = if send_wait_ms > overlap_ms {
        cur / 2
    } else if send_wait_ms < overlap_ms * 0.1 {
        cur.saturating_mul(2)
    } else {
        cur
    };
    next.clamp(PART_ITEMS_MIN, PART_ITEMS_MAX)
}

/// Per-sender staging for the eager inbound drain of a pipelined exchange.
///
/// Batches of the in-flight round are routed the moment they arrive
/// (overlapping the sender's remaining compute) and parked here; at the
/// coherency barrier [`Self::stitch`] re-establishes the serialized path's
/// global order — ascending sender, then per-sender arrival (= send)
/// order, which per-peer FIFO guarantees on both transports. Since every
/// replicated vertex ships at most once per (sender, round), per-vertex
/// fold order is exactly the serialized sender order, making the commit
/// bitwise identical to `Endpoint::exchange` + one `route_inbound` pass.
pub struct PipelineDrain<D> {
    by_sender: Vec<Vec<RoutedSegments<D>>>,
}

impl<D> PipelineDrain<D> {
    /// Empty staging for an `n`-machine mesh.
    pub fn new(n: usize) -> Self {
        PipelineDrain {
            by_sender: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Parks one routed part from machine `from` (arrival order per sender
    /// is preserved by pushing, never sorting).
    pub fn push(&mut self, from: usize, routed: RoutedSegments<D>) {
        self.by_sender[from].push(routed);
    }

    /// Drains the staging into a single per-block segment list in
    /// (sender, part) order, ready for `deliver_segments`.
    pub fn stitch(&mut self, num_blocks: usize) -> RoutedSegments<D> {
        let mut out: RoutedSegments<D> = (0..num_blocks).map(|_| Vec::new()).collect();
        for parts in &mut self.by_sender {
            for routed in parts.drain(..) {
                debug_assert_eq!(routed.len(), num_blocks);
                for (b, segments) in routed.into_iter().enumerate() {
                    out[b].extend(segments);
                }
            }
        }
        out
    }
}

/// Stages `(gid, d)` for `dst`, folding into the previously staged item
/// when it carries the same gid (sender-side `⊕` combining). Returns
/// `true` iff the item was folded rather than pushed — the caller counts
/// those into [`NetStats::record_combined`](lazygraph_cluster::NetStats).
///
/// Only *adjacent* duplicates combine, which is exhaustive because every
/// engine stages its coherency decisions in ascending local-id order
/// (equal to ascending gid order within a destination). Folding adjacent
/// items of a stream never changes the receiver's left-fold result for
/// an associative `⊕`, so combined and uncombined streams deliver
/// bitwise-identical accumulators.
#[inline]
pub fn stage_combining<P: VertexProgram>(
    program: &P,
    outboxes: &mut lazygraph_cluster::OutboxSet<(u32, P::Delta)>,
    dst: usize,
    gid: u32,
    d: P::Delta,
) -> bool {
    if let Some((last_gid, last_d)) = outboxes.last_mut(dst) {
        if *last_gid == gid {
            *last_d = program.sum(*last_d, d);
            return true;
        }
    }
    outboxes.push(dst, (gid, d));
    false
}

/// Block-parallel translate-and-bucket over received batches: the
/// replacement for the serial per-item `local_of` + push loop.
///
/// Each batch is drained by one pool task (batches are disjoint, so this
/// needs no locking); every item goes through `translate` — typically a
/// dense route-table lookup plus `program.gather` — and lands in that
/// task's per-block bucket. `translate` returning `None` drops the item
/// (unroutable or filtered), keeping the hot loop panic-free. The
/// per-batch buckets are then stitched into per-block *segment lists* in
/// batch order, ready for
/// [`MachineState::deliver_segments`](crate::state::MachineState::deliver_segments):
/// no second bucketing pass, and per-vertex fold order is identical to
/// translating the batches serially in order.
///
/// Drained batches keep their capacity; the caller recycles them back to
/// their senders via [`Endpoint::recycle`](lazygraph_cluster::Endpoint::recycle).
///
/// `scratch` is the caller's iteration-persistent pool of emptied bucket
/// vectors (typically `MachineState::seg_scratch`): buckets are drawn from
/// it before the parallel pass and unused (empty) ones are returned after,
/// so steady-state supersteps stop re-growing the per-block buckets from
/// zero. The non-empty buckets travel on as segments and come home through
/// `deliver_segments`, which drains into the same pool.
pub fn route_inbound<T, D, F>(
    pctx: &ParallelCtx,
    num_local: usize,
    batches: &mut [Batch<T>],
    translate: F,
    scratch: &mut Vec<Vec<(u32, D)>>,
) -> RoutedSegments<D>
where
    T: Wire + Send,
    D: Send,
    F: Fn(T) -> Option<(u32, D)> + Sync,
{
    let bs = pctx.block_size().max(1);
    let num_blocks = num_local.div_ceil(bs).max(1);
    // Buckets are drawn serially here (the pool itself is never shared
    // with tasks); capacities differ per draw but contents never do, so
    // reuse cannot affect results.
    #[allow(clippy::type_complexity)]
    let work: Vec<(&mut Batch<T>, Vec<Vec<(u32, D)>>)> = batches
        .iter_mut()
        .map(|batch| {
            let buckets: Vec<Vec<(u32, D)>> =
                (0..num_blocks).map(|_| scratch.pop().unwrap_or_default()).collect();
            (batch, buckets)
        })
        .collect();
    let per_batch: Vec<Vec<Vec<(u32, D)>>> = pctx.pool().map(work, |(batch, mut buckets)| {
        // Zero-copy inbound path: a TCP batch arrives as the raw frame
        // payload, and each item decodes straight off those bytes into
        // its destination bucket — no intermediate `Vec<T>` per batch.
        // Decode order equals wire order equals the materialized path's
        // item order, so fold order (and thus every value) is identical.
        if let Some(raw) = batch.raw.as_mut() {
            let mut r = WireReader::new(&raw.bytes[raw.offset..]);
            for _ in 0..raw.count {
                match T::decode(&mut r) {
                    Ok(item) => {
                        if let Some((l, d)) = translate(item) {
                            if let Some(bucket) = buckets.get_mut(l as usize / bs) {
                                bucket.push((l, d));
                            }
                        }
                    }
                    Err(_) => {
                        // A short or malformed tail means wire corruption
                        // the frame layer missed; drop the remainder of
                        // this batch rather than panic in the hot loop.
                        debug_assert!(false, "malformed item in zero-copy batch");
                        break;
                    }
                }
            }
            // Mark drained; the buffer itself rides home through
            // `Endpoint::recycle` back to the reader's free list.
            raw.count = 0;
        }
        for item in batch.items.drain(..) {
            if let Some((l, d)) = translate(item) {
                // Out-of-range l means a corrupt route table; drop
                // rather than panic in the hot loop (debug builds
                // still catch it in deliver_segments).
                if let Some(bucket) = buckets.get_mut(l as usize / bs) {
                    bucket.push((l, d));
                }
            }
        }
        buckets
    });
    // Transpose [batch][block] → [block][segment], batch order preserved.
    let mut per_block: RoutedSegments<D> = (0..num_blocks).map(|_| Vec::new()).collect();
    for buckets in per_batch {
        for (b, segment) in buckets.into_iter().enumerate() {
            if !segment.is_empty() {
                per_block[b].push(segment);
            } else if segment.capacity() != 0 {
                scratch.push(segment);
            }
        }
    }
    per_block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{ParallelConfig, ParallelCtx};
    use crate::program::{EdgeCtx, VertexCtx};
    use lazygraph_cluster::OutboxSet;
    use lazygraph_graph::VertexId;
    use lazygraph_net::FrameKind;

    struct Sum;
    impl VertexProgram for Sum {
        type VData = u64;
        type Delta = u64;
        fn name(&self) -> &'static str {
            "sum"
        }
        fn init_data(&self, _v: VertexId, _c: &VertexCtx) -> u64 {
            0
        }
        fn init_message(&self, _v: VertexId, _c: &VertexCtx) -> Option<u64> {
            None
        }
        fn sum(&self, a: u64, b: u64) -> u64 {
            a + b
        }
        fn inverse(&self, accum: u64, a: u64) -> u64 {
            accum - a
        }
        fn apply(&self, _v: VertexId, d: &mut u64, a: u64, _c: &VertexCtx) -> Option<u64> {
            *d += a;
            None
        }
        fn scatter(
            &self,
            _v: VertexId,
            _d: &u64,
            x: u64,
            _c: &VertexCtx,
            _e: &EdgeCtx,
        ) -> Option<u64> {
            Some(x)
        }
    }

    #[test]
    fn stage_combining_folds_adjacent_keys_only() {
        let mut out = OutboxSet::new(2);
        assert!(!stage_combining(&Sum, &mut out, 1, 7, 10));
        assert!(stage_combining(&Sum, &mut out, 1, 7, 5)); // adjacent dup folds
        assert!(!stage_combining(&Sum, &mut out, 1, 9, 1));
        assert!(!stage_combining(&Sum, &mut out, 1, 7, 2)); // non-adjacent: new item
        assert!(!stage_combining(&Sum, &mut out, 0, 7, 3)); // other dst untouched
        assert_eq!(out.staged(1), &[(7, 15), (9, 1), (7, 2)]);
        assert_eq!(out.staged(0), &[(7, 3)]);
    }

    #[test]
    fn route_inbound_preserves_batch_then_item_order() {
        // 3 batches (already sender-sorted), gid == local id, 2 blocks.
        let mk = |from: usize, items: Vec<(u32, u64)>| Batch {
            from,
            sent_at: 0.0,
            round: 0,
            last: true,
            kind: FrameKind::Data,
            items,
            raw: None,
        };
        for threads in [1, 4] {
            let pctx = ParallelCtx::new(ParallelConfig {
                threads,
                block_size: 4,
            });
            let mut batches = vec![
                mk(0, vec![(0, 1), (5, 2), (1, 3)]),
                mk(1, vec![(5, 4), (0, 5)]),
                mk(2, vec![(7, 6)]),
            ];
            let segments = route_inbound(
                &pctx,
                8,
                &mut batches,
                |(gid, d): (u32, u64)| Some((gid, d * 10)),
                &mut Vec::new(),
            );
            assert_eq!(segments.len(), 2);
            // Block 0: batch 0's items in order, then batch 1's.
            assert_eq!(segments[0], vec![vec![(0, 10), (1, 30)], vec![(0, 50)]]);
            // Block 1 gets one segment per contributing batch, in order.
            assert_eq!(segments[1], vec![vec![(5, 20)], vec![(5, 40)], vec![(7, 60)]]);
            // Batches were drained in place (capacity recyclable).
            assert!(batches.iter().all(|b| b.items.is_empty()));
        }
    }

    #[test]
    fn route_inbound_drops_untranslatable_items() {
        let pctx = ParallelCtx::new(ParallelConfig {
            threads: 2,
            block_size: 4,
        });
        let mut batches = vec![Batch {
            from: 0,
            sent_at: 0.0,
            round: 0,
            last: true,
            kind: FrameKind::Data,
            items: vec![(0u32, 1u64), (99, 2), (3, 3)],
            raw: None,
        }];
        let segments = route_inbound(
            &pctx,
            4,
            &mut batches,
            |(gid, d): (u32, u64)| (gid < 4).then_some((gid, d)),
            &mut Vec::new(),
        );
        assert_eq!(segments, vec![vec![vec![(0, 1), (3, 3)]]]);
    }

    #[test]
    fn route_inbound_draws_and_returns_scratch_buckets() {
        let pctx = ParallelCtx::new(ParallelConfig {
            threads: 1,
            block_size: 4,
        });
        // 2 blocks, one batch whose items all land in block 0: the block-1
        // bucket must come back to the pool with its capacity intact.
        let mut scratch: Vec<Vec<(u32, u64)>> =
            vec![Vec::with_capacity(100), Vec::with_capacity(100)];
        let mut batches = vec![Batch {
            from: 0,
            sent_at: 0.0,
            round: 0,
            last: true,
            kind: FrameKind::Data,
            items: vec![(0u32, 1u64), (1, 2)],
            raw: None,
        }];
        let segments = route_inbound(
            &pctx,
            8,
            &mut batches,
            |(gid, d): (u32, u64)| Some((gid, d)),
            &mut scratch,
        );
        assert_eq!(segments[0], vec![vec![(0, 1), (1, 2)]]);
        assert!(segments[1].is_empty());
        assert_eq!(scratch.len(), 1, "unused bucket returns to the pool");
        assert_eq!(scratch[0].capacity(), 100);
        // The used bucket left with pooled capacity too.
        assert!(segments[0][0].capacity() >= 100);
    }

    #[test]
    fn route_inbound_raw_cursor_matches_materialized_routing() {
        use lazygraph_cluster::RawBatch;
        // Same logical items twice: once materialized, once as raw wire
        // bytes behind a cursor (with a nonzero offset, as a real frame
        // payload has). Routing must be identical.
        let items: Vec<(u32, u64)> = vec![(0, 1), (5, 2), (1, 3), (5, 4), (7, 5)];
        let mut bytes = vec![0xAB, 0xCD, 0xEF]; // stand-in header bytes
        let offset = bytes.len();
        for it in &items {
            it.encode(&mut bytes);
        }
        for threads in [1, 4] {
            let pctx = ParallelCtx::new(ParallelConfig {
                threads,
                block_size: 4,
            });
            let mut materialized = vec![Batch {
                from: 0,
                sent_at: 0.0,
                round: 0,
                last: true,
                kind: FrameKind::Data,
                items: items.clone(),
                raw: None,
            }];
            let mut raw = vec![Batch {
                from: 0,
                sent_at: 0.0,
                round: 0,
                last: true,
                kind: FrameKind::Data,
                items: Vec::new(),
                raw: Some(RawBatch {
                    bytes: bytes.clone(),
                    offset,
                    count: items.len() as u32,
                }),
            }];
            let translate = |(gid, d): (u32, u64)| Some((gid, d * 10));
            let a = route_inbound(&pctx, 8, &mut materialized, translate, &mut Vec::new());
            let b = route_inbound(&pctx, 8, &mut raw, translate, &mut Vec::new());
            assert_eq!(a, b);
            // The raw batch is drained (count zeroed) but keeps its buffer
            // for recycling back to the frame reader's free list.
            let r = raw[0].raw.as_ref().unwrap();
            assert_eq!(r.count, 0);
            assert!(!r.bytes.is_empty());
        }
    }

    #[test]
    fn adapt_part_items_halves_doubles_and_clamps() {
        // Send-bound: halve.
        assert_eq!(adapt_part_items(1024, 5.0, 1.0), 512);
        // Fully overlapped: double.
        assert_eq!(adapt_part_items(1024, 0.01, 1.0), 2048);
        // In between: hold.
        assert_eq!(adapt_part_items(1024, 0.5, 1.0), 1024);
        // Clamps at both ends.
        assert_eq!(adapt_part_items(PART_ITEMS_MIN, 5.0, 1.0), PART_ITEMS_MIN);
        assert_eq!(adapt_part_items(PART_ITEMS_MAX, 0.0, 1.0), PART_ITEMS_MAX);
        // Untrusted wall-clock: NaN holds (after clamping into range).
        assert_eq!(adapt_part_items(1024, f64::NAN, f64::NAN), 1024);
        // Zero overlap with zero wait holds rather than oscillating.
        assert_eq!(adapt_part_items(1024, 0.0, 0.0), 1024);
    }

    #[test]
    fn pipeline_drain_stitches_in_sender_then_part_order() {
        let mut drain: PipelineDrain<u64> = PipelineDrain::new(3);
        // Arrival order scrambles senders; parts within a sender arrive in
        // send order (per-peer FIFO).
        drain.push(2, vec![vec![vec![(0, 200)]], vec![]]);
        drain.push(0, vec![vec![vec![(1, 1)]], vec![vec![(5, 2)]]]);
        drain.push(2, vec![vec![], vec![vec![(4, 201)]]]);
        drain.push(0, vec![vec![vec![(0, 3)]], vec![]]);
        let out = drain.stitch(2);
        assert_eq!(
            out[0],
            vec![vec![(1, 1)], vec![(0, 3)], vec![(0, 200)]],
            "block 0: sender 0's parts in order, then sender 2's"
        );
        assert_eq!(out[1], vec![vec![(5, 2)], vec![(4, 201)]]);
        // Stitch drains: a second stitch is empty.
        assert!(drain.stitch(2).iter().all(Vec::is_empty));
    }
}
