//! Shared BSP plumbing: the bundled allreduce every barrier performs.
//!
//! One global synchronisation moves four things at once — the simulated
//! clocks (max), the bytes just exchanged (sum, converted to collective
//! communication time), pending-work counts (sum, for termination), and the
//! comm-mode volume estimates (sum, for §4.2.2 switching). Bundling keeps
//! the sync count faithful: one barrier = one global synchronisation.

use std::sync::Arc;

use lazygraph_cluster::{Collective, CommError, CostModel, NetStats, SimClock};
use lazygraph_net::{NetError, Wire, WireReader};
use parking_lot::Mutex;

use crate::comm_mode::VolumeEstimate;
use crate::metrics::SimBreakdown;

/// What a barrier charges for the bytes it just moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommCharge {
    /// All-to-all collective (paper `t_a2a`).
    A2A,
    /// Mirrors-to-master collective (paper `t_m2m`).
    M2M,
    /// No communication happened in this step (pure barrier).
    None,
}

/// The value reduced at each BSP synchronisation point.
#[derive(Clone, Copy, Debug, Default)]
pub struct BspReduction {
    /// Max simulated clock across machines.
    pub clock: f64,
    /// Sum of bytes sent since the previous sync.
    pub bytes: u64,
    /// Sum of pending messages (termination).
    pub pending: u64,
    /// Sum of vertices applied this step (active count, interval model).
    pub applied: u64,
    /// Comm-mode volume estimates for the *next* coherency exchange.
    pub est: VolumeEstimate,
}

/// The reduction crosses the mesh-backed [`Collective`] in multiprocess
/// runs; `clock` rides as its IEEE-754 bit pattern so the folded max is
/// bitwise-identical to the shared-memory path.
impl Wire for BspReduction {
    fn encode(&self, out: &mut Vec<u8>) {
        self.clock.encode(out);
        self.bytes.encode(out);
        self.pending.encode(out);
        self.applied.encode(out);
        self.est.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(BspReduction {
            clock: f64::decode(r)?,
            bytes: u64::decode(r)?,
            pending: u64::decode(r)?,
            applied: u64::decode(r)?,
            est: VolumeEstimate::decode(r)?,
        })
    }
}

fn combine(a: BspReduction, b: BspReduction) -> BspReduction {
    BspReduction {
        clock: a.clock.max(b.clock),
        bytes: a.bytes + b.bytes,
        pending: a.pending + b.pending,
        applied: a.applied + b.applied,
        est: a.est.merge(b.est),
    }
}

/// Per-machine handle performing bundled syncs and (on machine 0)
/// accumulating the global simulated-time breakdown.
pub struct BspSync {
    pub me: usize,
    pub coll: Arc<Collective>,
    pub stats: Arc<NetStats>,
    pub cost: CostModel,
    breakdown: Arc<Mutex<SimBreakdown>>,
    last_global: f64,
}

impl BspSync {
    /// A new handle; every machine of a run shares `coll`, `stats`, and
    /// `breakdown`.
    pub fn new(
        me: usize,
        coll: Arc<Collective>,
        stats: Arc<NetStats>,
        cost: CostModel,
        breakdown: Arc<Mutex<SimBreakdown>>,
    ) -> Self {
        BspSync {
            me,
            coll,
            stats,
            cost,
            breakdown,
            last_global: 0.0,
        }
    }

    /// One global synchronisation: reduces `local`, advances every clock to
    /// the global max plus barrier latency plus the collective
    /// communication charge, and returns the reduction.
    pub fn sync(
        &mut self,
        clock: &mut SimClock,
        local: BspReduction,
        charge: CommCharge,
    ) -> Result<BspReduction, CommError> {
        let mut local = local;
        local.clock = clock.now();
        let red = self.coll.allreduce(self.me, local, &self.stats, combine)?;
        let comm_time = match charge {
            CommCharge::A2A if red.bytes > 0 => self.cost.t_a2a(red.bytes),
            CommCharge::M2M if red.bytes > 0 => self.cost.t_m2m(red.bytes),
            _ => 0.0,
        };
        let new_global = red.clock + self.cost.barrier_latency + comm_time;
        if self.me == 0 {
            let mut b = self.breakdown.lock();
            b.compute += (red.clock - self.last_global).max(0.0); // lazylint: allow(float-commit) -- machine-0-only accounting of an allreduced clock; order is fixed by the superstep sequence
            b.barrier += self.cost.barrier_latency;
            b.comm += comm_time;
        }
        self.last_global = new_global;
        clock.set(new_global);
        Ok(red)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_advances_all_clocks_to_max_plus_costs() {
        let n = 3;
        let coll = Arc::new(Collective::new(n));
        let stats = Arc::new(NetStats::new());
        let breakdown = Arc::new(Mutex::new(SimBreakdown::default()));
        let cost = CostModel::paper_cluster();
        let clocks: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|me| {
                    let coll = coll.clone();
                    let stats = stats.clone();
                    let breakdown = breakdown.clone();
                    s.spawn(move || {
                        let mut bsp = BspSync::new(me, coll, stats, cost, breakdown);
                        let mut clock = SimClock::new();
                        clock.advance(me as f64); // machine 2 is slowest
                        let red = bsp.sync(
                            &mut clock,
                            BspReduction {
                                bytes: 1_000_000,
                                pending: me as u64,
                                ..Default::default()
                            },
                            CommCharge::A2A,
                        );
                        let red = red.unwrap();
                        assert_eq!(red.pending, 3);
                        assert_eq!(red.bytes, 3_000_000);
                        clock.now()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All clocks equal: max(2.0) + barrier + t_a2a(3 MB).
        let expected = 2.0 + cost.barrier_latency + cost.t_a2a(3_000_000);
        for c in clocks {
            assert!((c - expected).abs() < 1e-9, "clock {c} vs {expected}");
        }
        let b = breakdown.lock();
        assert!((b.compute - 2.0).abs() < 1e-9);
        assert!((b.comm - cost.t_a2a(3_000_000)).abs() < 1e-12);
        assert!((b.barrier - cost.barrier_latency).abs() < 1e-12);
    }

    #[test]
    fn pure_barrier_charges_no_comm() {
        let coll = Arc::new(Collective::new(1));
        let stats = Arc::new(NetStats::new());
        let breakdown = Arc::new(Mutex::new(SimBreakdown::default()));
        let cost = CostModel::paper_cluster();
        let mut bsp = BspSync::new(0, coll, stats, cost, breakdown.clone());
        let mut clock = SimClock::new();
        bsp.sync(&mut clock, BspReduction::default(), CommCharge::None).unwrap();
        assert!((clock.now() - cost.barrier_latency).abs() < 1e-12);
        assert_eq!(breakdown.lock().comm, 0.0);
    }
}
