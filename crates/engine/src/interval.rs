//! The adaptive interval model (§4.2.1): when to turn lazy mode on, and how
//! long each local computation stage may run.
//!
//! The paper trains a decision tree over two features — graph locality
//! (`E/V`, replication factor) and the algorithm's active-vertex trend —
//! and reports the learned rule:
//!
//! * turn lazy mode on when `E/V ≤ 10 || trend ≥ 0.07`, where
//!   `trend = (cnt_{t−1} − cnt_t) / cnt_{t−1}` over active-vertex counts at
//!   successive coherency points (negative trend = ascent phase);
//! * the first iteration always runs without a local computation stage;
//! * `T` is collected online as the duration of the run's first local
//!   computation stage (which runs to local quiescence); every later local
//!   stage runs no longer than `3·T` (`doLC()`).

use crate::config::IntervalPolicy;

/// Tracks the active-vertex trend and answers `turnOnLazy()` / `doLC()`.
#[derive(Clone, Debug)]
pub struct IntervalModel {
    policy: IntervalPolicy,
    ev_ratio: f64,
    prev_active: Option<u64>,
    last_trend: f64,
    iterations_seen: u64,
}

impl IntervalModel {
    /// A model for one run over a graph with the given `E/V`.
    pub fn new(policy: IntervalPolicy, ev_ratio: f64) -> Self {
        IntervalModel {
            policy,
            ev_ratio,
            prev_active: None,
            last_trend: 0.0,
            iterations_seen: 0,
        }
    }

    /// Records the global active-vertex count observed at a data coherency
    /// stage and updates the trend.
    pub fn observe_active(&mut self, count: u64) {
        if let Some(prev) = self.prev_active {
            if prev > 0 {
                self.last_trend = (prev as f64 - count as f64) / prev as f64;
            }
        }
        self.prev_active = Some(count);
        self.iterations_seen += 1;
    }

    /// The current trend value (positive = descent part of the algorithm).
    pub fn trend(&self) -> f64 {
        self.last_trend
    }

    /// The model's mutable state, for checkpointing:
    /// `(prev_active, last_trend, iterations_seen)`.
    pub fn export_state(&self) -> (Option<u64>, f64, u64) {
        (self.prev_active, self.last_trend, self.iterations_seen)
    }

    /// Restores state captured by [`Self::export_state`] — the policy and
    /// `E/V` are reconstruction inputs, not state, so only the trend
    /// tracker moves.
    pub fn import_state(&mut self, state: (Option<u64>, f64, u64)) {
        self.prev_active = state.0;
        self.last_trend = state.1;
        self.iterations_seen = state.2;
    }

    /// `turnOnLazy()` — may the engine enter the local computation stage?
    pub fn turn_on_lazy(&self) -> bool {
        // The first iteration always runs eagerly (establishes x^(1), Δ^(1)).
        if self.iterations_seen < 1 {
            return false;
        }
        match self.policy {
            IntervalPolicy::AlwaysLazy => true,
            IntervalPolicy::NeverLazy => false,
            IntervalPolicy::Adaptive {
                ev_threshold,
                trend_threshold,
                ..
            } => self.ev_ratio <= ev_threshold || self.last_trend >= trend_threshold,
        }
    }

    /// `doLC()` — may the current local stage continue? `first_stage` is
    /// the measured duration `T` of this run's *first* local computation
    /// stage (`None` while it is still being measured: the first stage
    /// runs to local quiescence and establishes `T` online, per §4.2.1);
    /// later stages are bounded by `local_bound_factor · T`.
    pub fn continue_local_stage(&self, first_stage: Option<f64>, elapsed: f64) -> bool {
        match self.policy {
            IntervalPolicy::AlwaysLazy => true,
            IntervalPolicy::NeverLazy => false,
            IntervalPolicy::Adaptive {
                local_bound_factor, ..
            } => match first_stage {
                None => true, // first stage: run to local quiescence, measure T
                Some(t) => elapsed < local_bound_factor * t.max(f64::MIN_POSITIVE),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adaptive() -> IntervalPolicy {
        IntervalPolicy::paper_adaptive()
    }

    #[test]
    fn first_iteration_is_always_eager() {
        let m = IntervalModel::new(adaptive(), 2.0);
        assert!(!m.turn_on_lazy(), "paper: first iteration without local stage");
        let m2 = IntervalModel::new(IntervalPolicy::AlwaysLazy, 2.0);
        assert!(!m2.turn_on_lazy());
    }

    #[test]
    fn good_locality_turns_on_after_first() {
        // Road graph: E/V ≈ 2.4 ≤ 10 → lazy on regardless of trend.
        let mut m = IntervalModel::new(adaptive(), 2.4);
        m.observe_active(1000);
        assert!(m.turn_on_lazy());
        // Even in the ascent phase (growing active set → negative trend).
        m.observe_active(5000);
        assert!(m.trend() < 0.0);
        assert!(m.turn_on_lazy());
    }

    #[test]
    fn poor_locality_needs_descent() {
        // Twitter-like: E/V ≈ 24 > 10 → lazy only when trend ≥ 0.07.
        let mut m = IntervalModel::new(adaptive(), 24.0);
        m.observe_active(1000);
        assert!(!m.turn_on_lazy(), "no trend yet");
        m.observe_active(2000); // ascent
        assert!(m.trend() < 0.0);
        assert!(!m.turn_on_lazy());
        m.observe_active(1000); // sharp descent: trend = 0.5
        assert!((m.trend() - 0.5).abs() < 1e-12);
        assert!(m.turn_on_lazy());
    }

    #[test]
    fn shallow_descent_below_threshold_stays_eager() {
        let mut m = IntervalModel::new(adaptive(), 24.0);
        m.observe_active(1000);
        m.observe_active(950); // trend = 0.05 < 0.07
        assert!(!m.turn_on_lazy());
        m.observe_active(870); // trend ≈ 0.084 ≥ 0.07
        assert!(m.turn_on_lazy());
    }

    #[test]
    fn local_stage_bound_is_3t() {
        let m = IntervalModel::new(adaptive(), 2.0);
        let t = Some(0.010);
        assert!(m.continue_local_stage(t, 0.0));
        assert!(m.continue_local_stage(t, 0.029));
        assert!(!m.continue_local_stage(t, 0.030));
        assert!(!m.continue_local_stage(t, 1.0));
    }

    #[test]
    fn first_stage_is_unbounded() {
        let m = IntervalModel::new(adaptive(), 2.0);
        assert!(m.continue_local_stage(None, 1.0e9));
    }

    #[test]
    fn always_lazy_never_bounds() {
        let m = IntervalModel::new(IntervalPolicy::AlwaysLazy, 50.0);
        assert!(m.continue_local_stage(Some(0.001), 1.0e9));
        let mut m2 = m.clone();
        m2.observe_active(10);
        assert!(m2.turn_on_lazy());
    }

    #[test]
    fn never_lazy_never_enters() {
        let mut m = IntervalModel::new(IntervalPolicy::NeverLazy, 2.0);
        m.observe_active(10);
        m.observe_active(1);
        assert!(!m.turn_on_lazy());
        assert!(!m.continue_local_stage(Some(1.0), 0.0));
    }

    #[test]
    fn trend_handles_zero_prev() {
        let mut m = IntervalModel::new(adaptive(), 24.0);
        m.observe_active(0);
        m.observe_active(100);
        // prev == 0: trend untouched, no division by zero.
        assert_eq!(m.trend(), 0.0);
    }
}
