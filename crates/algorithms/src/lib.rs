//! # lazygraph-algorithms
//!
//! The paper's four evaluation workloads as push-style delta vertex
//! programs — [`PageRankDelta`] (Fig. 3), [`Sssp`], [`ConnectedComponents`],
//! [`KCore`] (Fig. 1(a)) — plus [`Bfs`] as an extra unidirectional
//! workload, and [`reference`] implementations (sequential executor,
//! Dijkstra, union-find, peeling, power iteration) used as ground truth by
//! the test suite.

pub mod bfs;
pub mod cc;
pub mod coreness;
pub mod kcore;
pub mod multi_bfs;
pub mod pagerank;
pub mod ppr;
pub mod reference;
pub mod sssp;
pub mod widest_path;

pub use bfs::Bfs;
pub use cc::ConnectedComponents;
pub use coreness::{coreness, coreness_distributed};
pub use kcore::KCore;
pub use multi_bfs::MultiSourceBfs;
pub use pagerank::{PageRankData, PageRankDelta};
pub use ppr::PersonalizedPageRank;
pub use sssp::Sssp;
pub use widest_path::WidestPath;
