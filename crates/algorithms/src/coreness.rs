//! Full k-core decomposition: every vertex's *coreness* (the largest k for
//! which it survives the k-core), computed two ways — the classic
//! sequential bucket-peeling algorithm, and a distributed sweep that runs
//! the engine's [`crate::KCore`] program for increasing k (what a LazyGraph
//! deployment would actually do).

use lazygraph_engine::{run, CommError, EngineConfig};
use lazygraph_graph::{Graph, VertexId};

use crate::kcore::KCore;

/// Sequential coreness by bucket peeling (Batagelj–Zaveršnik, O(E)).
/// `graph` must be symmetric; degrees are out-degrees (== undirected
/// degrees on symmetric graphs).
pub fn coreness(graph: &Graph) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut degree: Vec<u32> = graph
        .vertices()
        .map(|v| graph.out_degree(v) as u32)
        .collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;
    // Bucket sort vertices by degree.
    let mut bucket_start = vec![0usize; max_degree + 2];
    for &d in &degree {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 1..bucket_start.len() {
        bucket_start[i] += bucket_start[i - 1];
    }
    let mut pos = vec![0usize; n]; // vertex -> position in `order`
    let mut order = vec![0u32; n]; // ascending by current degree
    {
        let mut cursor = bucket_start.clone();
        for v in 0..n as u32 {
            let d = degree[v as usize] as usize;
            order[cursor[d]] = v;
            pos[v as usize] = cursor[d];
            cursor[d] += 1;
        }
    }
    // bucket_start[d] = index of the first vertex with degree >= d.
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i];
        core[v as usize] = degree[v as usize];
        for (u, _) in graph.out_edges(VertexId(v)) {
            let du = degree[u.index()];
            if du > degree[v as usize] {
                // Move u one bucket down: swap it with the first vertex of
                // its current bucket, then shrink the bucket boundary.
                let pu = pos[u.index()];
                let first = bucket_start[du as usize];
                let w = order[first];
                if u.0 != w {
                    order.swap(pu, first);
                    pos[u.index()] = first;
                    pos[w as usize] = pu;
                }
                bucket_start[du as usize] += 1;
                degree[u.index()] -= 1;
            }
        }
    }
    core
}

/// Distributed coreness: runs the engine's k-core program for k = 1, 2, …
/// until the core empties, recording the largest k each vertex survived.
/// Exercises the full lazy stack; O(k_max) engine runs. Fails only if a
/// simulated machine thread dies mid-run.
pub fn coreness_distributed(
    graph: &Graph,
    machines: usize,
    cfg: &EngineConfig,
) -> Result<Vec<u32>, CommError> {
    let n = graph.num_vertices();
    let mut core = vec![0u32; n];
    let mut k = 1u32;
    loop {
        let result = run(graph, machines, cfg, &KCore::new(k))?;
        let mut any = false;
        for (v, &c) in result.values.iter().enumerate() {
            if c > 0 {
                core[v] = k;
                any = true;
            }
        }
        if !any {
            break;
        }
        k += 1;
        assert!(k < 1_000_000, "runaway coreness sweep");
    }
    Ok(core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::kcore_peeling;
    use lazygraph_graph::generators::{rmat, RmatConfig};
    use lazygraph_graph::GraphBuilder;

    fn symmetric(seed: u64) -> Graph {
        let base = rmat(RmatConfig::graph500(8, 5, seed));
        let mut b = GraphBuilder::new(base.num_vertices());
        b.extend(base.edges());
        b.symmetrize();
        b.build()
    }

    #[test]
    fn coreness_consistent_with_per_k_peeling() {
        let g = symmetric(61);
        let core = coreness(&g);
        let k_max = core.iter().copied().max().unwrap();
        for k in 1..=k_max.min(8) {
            let peel = kcore_peeling(&g, k);
            for v in 0..g.num_vertices() {
                assert_eq!(
                    core[v] >= k,
                    peel[v] > 0,
                    "vertex {v}, k={k}: coreness {} vs peel {}",
                    core[v],
                    peel[v]
                );
            }
        }
    }

    #[test]
    fn triangle_with_pendant() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0u32, 1u32)
            .add_edge(1u32, 2u32)
            .add_edge(2u32, 0u32)
            .add_edge(2u32, 3u32);
        b.symmetrize();
        let g = b.build();
        assert_eq!(coreness(&g), vec![2, 2, 2, 1]);
    }

    #[test]
    fn distributed_matches_sequential() {
        let g = symmetric(62);
        let seq = coreness(&g);
        let cfg = EngineConfig::lazygraph().with_bidirectional(true);
        let dist = coreness_distributed(&g, 4, &cfg).expect("cluster run");
        assert_eq!(seq, dist);
    }

    #[test]
    fn isolated_vertices_have_zero_coreness() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0u32, 1u32);
        b.symmetrize();
        let g = b.build();
        assert_eq!(coreness(&g)[2], 0);
    }
}
