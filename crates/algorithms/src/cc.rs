//! Connected components (CC) via min-label propagation, one of the paper's
//! four evaluation workloads. Run on symmetrised graphs (each undirected
//! edge present in both directions) so labels flood whole components.

use lazygraph_engine::program::DeltaExchange;
use lazygraph_engine::{EdgeCtx, VertexCtx, VertexProgram};
use lazygraph_graph::VertexId;

/// The connected-components vertex program: every vertex converges to the
/// minimum vertex id in its (weakly, given symmetrisation) connected
/// component.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnectedComponents;

impl VertexProgram for ConnectedComponents {
    type VData = u32;
    type Delta = u32;

    fn name(&self) -> &'static str {
        "cc"
    }

    fn init_data(&self, _v: VertexId, _ctx: &VertexCtx) -> u32 {
        // Start above every real label; the init message (own id) relaxes
        // it in the first apply and triggers the initial flood.
        u32::MAX
    }

    fn init_message(&self, v: VertexId, _ctx: &VertexCtx) -> Option<u32> {
        Some(v.0)
    }

    fn sum(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn inverse(&self, accum: u32, _a: u32) -> u32 {
        accum // idempotent
    }

    fn apply(&self, _v: VertexId, data: &mut u32, accum: u32, _ctx: &VertexCtx) -> Option<u32> {
        if accum < *data {
            *data = accum;
            Some(accum)
        } else {
            None
        }
    }

    fn scatter(
        &self,
        _v: VertexId,
        _data: &u32,
        delta: u32,
        _ctx: &VertexCtx,
        _edge: &EdgeCtx,
    ) -> Option<u32> {
        Some(delta)
    }

    fn idempotent(&self) -> bool {
        true
    }

    fn exchange_policy(&self, coherent: &u32, delta: &u32) -> DeltaExchange {
        if *delta >= *coherent {
            DeltaExchange::Drop
        } else {
            DeltaExchange::Send
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> VertexCtx {
        VertexCtx {
            out_degree: 1,
            in_degree: 1,
            degree: 2,
            num_vertices: 8,
        }
    }

    #[test]
    fn every_vertex_starts_with_its_own_id() {
        let p = ConnectedComponents;
        assert_eq!(p.init_message(VertexId(5), &ctx()), Some(5));
        let mut d = p.init_data(VertexId(5), &ctx());
        let out = p.apply(VertexId(5), &mut d, 5, &ctx());
        assert_eq!(d, 5);
        assert_eq!(out, Some(5), "first apply must flood the own label");
    }

    #[test]
    fn smaller_label_wins() {
        let p = ConnectedComponents;
        let mut d = 7u32;
        assert_eq!(p.apply(VertexId(9), &mut d, 3, &ctx()), Some(3));
        assert_eq!(d, 3);
        assert_eq!(p.apply(VertexId(9), &mut d, 5, &ctx()), None);
        assert_eq!(d, 3);
    }

    #[test]
    fn scatter_forwards_label() {
        let p = ConnectedComponents;
        let e = EdgeCtx {
            dst: VertexId(1),
            weight: 1.0,
        };
        assert_eq!(p.scatter(VertexId(0), &3, 3, &ctx(), &e), Some(3));
    }
}
