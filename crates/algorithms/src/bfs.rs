//! Breadth-first search levels — an extra unidirectional workload beyond
//! the paper's four, structurally SSSP with unit weights.

use lazygraph_engine::program::DeltaExchange;
use lazygraph_engine::{EdgeCtx, VertexCtx, VertexProgram};
use lazygraph_graph::VertexId;

/// The BFS vertex program: each vertex converges to its hop distance from
/// the source (`u32::MAX` if unreachable).
#[derive(Clone, Copy, Debug)]
pub struct Bfs {
    /// The BFS root.
    pub source: VertexId,
}

impl Bfs {
    /// BFS from `source`.
    pub fn new(source: impl Into<VertexId>) -> Self {
        Bfs {
            source: source.into(),
        }
    }
}

impl VertexProgram for Bfs {
    type VData = u32;
    type Delta = u32;

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn init_data(&self, _v: VertexId, _ctx: &VertexCtx) -> u32 {
        u32::MAX
    }

    fn init_message(&self, v: VertexId, _ctx: &VertexCtx) -> Option<u32> {
        (v == self.source).then_some(0)
    }

    fn sum(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn inverse(&self, accum: u32, _a: u32) -> u32 {
        accum
    }

    fn apply(&self, _v: VertexId, data: &mut u32, accum: u32, _ctx: &VertexCtx) -> Option<u32> {
        if accum < *data {
            *data = accum;
            Some(accum)
        } else {
            None
        }
    }

    fn scatter(
        &self,
        _v: VertexId,
        _data: &u32,
        delta: u32,
        _ctx: &VertexCtx,
        _edge: &EdgeCtx,
    ) -> Option<u32> {
        Some(delta + 1)
    }

    fn idempotent(&self) -> bool {
        true
    }

    fn exchange_policy(&self, coherent: &u32, delta: &u32) -> DeltaExchange {
        if *delta >= *coherent {
            DeltaExchange::Drop
        } else {
            DeltaExchange::Send
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> VertexCtx {
        VertexCtx {
            out_degree: 1,
            in_degree: 1,
            degree: 2,
            num_vertices: 4,
        }
    }

    #[test]
    fn levels_increment() {
        let p = Bfs::new(0u32);
        let e = EdgeCtx {
            dst: VertexId(1),
            weight: 1.0,
        };
        assert_eq!(p.scatter(VertexId(0), &0, 0, &ctx(), &e), Some(1));
        assert_eq!(p.scatter(VertexId(0), &3, 3, &ctx(), &e), Some(4));
    }

    #[test]
    fn only_source_starts() {
        let p = Bfs::new(7u32);
        assert_eq!(p.init_message(VertexId(7), &ctx()), Some(0));
        assert_eq!(p.init_message(VertexId(6), &ctx()), None);
    }

    #[test]
    fn apply_keeps_minimum() {
        let p = Bfs::new(0u32);
        let mut d = u32::MAX;
        assert_eq!(p.apply(VertexId(1), &mut d, 2, &ctx()), Some(2));
        assert_eq!(p.apply(VertexId(1), &mut d, 4, &ctx()), None);
        assert_eq!(d, 2);
    }
}
