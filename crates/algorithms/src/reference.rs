//! Ground truth for the test suite: a sequential executor of any
//! [`VertexProgram`] (one machine, no replication — the semantics the
//! distributed engines must reproduce) plus independent classical
//! implementations (Dijkstra, union-find, peeling, power iteration) that
//! validate the vertex programs themselves.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lazygraph_engine::{EdgeCtx, VertexCtx, VertexProgram};
use lazygraph_graph::{Graph, VertexId};

/// Runs `program` on `graph` sequentially until no messages remain.
/// This is the user-view semantics every distributed engine must match.
pub fn run_sequential<P: VertexProgram>(graph: &Graph, program: &P) -> Vec<P::VData> {
    let n = graph.num_vertices();
    let ctx_of = |v: VertexId| VertexCtx {
        out_degree: graph.out_degree(v) as u32,
        in_degree: graph.in_degree(v) as u32,
        degree: graph.degree(v) as u32,
        num_vertices: n,
    };
    let mut vdata: Vec<P::VData> = graph
        .vertices()
        .map(|v| program.init_data(v, &ctx_of(v)))
        .collect();
    let mut message: Vec<Option<P::Delta>> = graph
        .vertices()
        .map(|v| program.init_message(v, &ctx_of(v)))
        .collect();
    let mut active: Vec<bool> = message.iter().map(|m| m.is_some()).collect();
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| active[v as usize]).collect();
    while let Some(l) = queue.pop() {
        active[l as usize] = false;
        let Some(accum) = message[l as usize].take() else {
            continue;
        };
        let v = VertexId(l);
        let ctx = ctx_of(v);
        let Some(d) = program.apply(v, &mut vdata[l as usize], accum, &ctx) else {
            continue;
        };
        let data = vdata[l as usize].clone();
        for (u, w) in graph.out_edges(v) {
            let edge = EdgeCtx {
                dst: u,
                weight: w,
            };
            if let Some(msg) = program.scatter(v, &data, d, &ctx, &edge) {
                let slot = &mut message[u.index()];
                *slot = Some(match slot.take() {
                    Some(prev) => program.sum(prev, msg),
                    None => msg,
                });
                if !active[u.index()] {
                    active[u.index()] = true;
                    queue.push(u.0);
                }
            }
        }
    }
    vdata
}

/// Dijkstra shortest paths from `source`; `f32::INFINITY` if unreachable.
pub fn dijkstra(graph: &Graph, source: VertexId) -> Vec<f32> {
    let n = graph.num_vertices();
    let mut dist = vec![f32::INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(ordered::F32, u32)>> = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Reverse((ordered::F32(0.0), source.0)));
    while let Some(Reverse((ordered::F32(d), v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (u, w) in graph.out_edges(VertexId(v)) {
            let nd = d + w;
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                heap.push(Reverse((ordered::F32(nd), u.0)));
            }
        }
    }
    dist
}

/// BFS hop counts from `source`; `u32::MAX` if unreachable.
pub fn bfs_levels(graph: &Graph, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut level = vec![u32::MAX; n];
    let mut frontier = vec![source];
    level[source.index()] = 0;
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for v in frontier {
            for (u, _) in graph.out_edges(v) {
                if level[u.index()] == u32::MAX {
                    level[u.index()] = depth;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    level
}

/// Connected components via union-find over the *undirected* closure of
/// the edges. Labels are canonicalised to the minimum vertex id of each
/// component (matching the min-label program's fixpoint).
pub fn connected_components(graph: &Graph) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for e in graph.edges() {
        let (a, b) = (find(&mut parent, e.src.0), find(&mut parent, e.dst.0));
        if a != b {
            parent[a.max(b) as usize] = a.min(b); // root at the smaller id
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// k-core by peeling: returns each vertex's final core value in the
/// engine's convention — 0 if deleted, otherwise its degree within the
/// surviving subgraph. `graph` must be symmetric.
pub fn kcore_peeling(graph: &Graph, k: u32) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut deg: Vec<u32> = graph.vertices().map(|v| graph.out_degree(v) as u32).collect();
    let mut deleted = vec![false; n];
    let mut stack: Vec<u32> = (0..n as u32).filter(|&v| deg[v as usize] < k).collect();
    for &v in &stack {
        deleted[v as usize] = true;
    }
    while let Some(v) = stack.pop() {
        for (u, _) in graph.out_edges(VertexId(v)) {
            if !deleted[u.index()] {
                deg[u.index()] -= 1;
                if deg[u.index()] < k {
                    deleted[u.index()] = true;
                    stack.push(u.0);
                }
            }
        }
    }
    (0..n)
        .map(|v| if deleted[v] { 0 } else { deg[v] })
        .collect()
}

/// PageRank by dense power iteration of the paper's Eq. 3
/// (`PR(i) = 0.15 + 0.85 Σ_{j→i} PR(j)/outDeg(j)`), run to `sweeps`
/// iterations. The delta-formulated engines converge to this fixpoint
/// within their tolerance.
pub fn pagerank_power(graph: &Graph, sweeps: usize) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut rank = vec![0.15f64; n];
    let out_deg: Vec<f64> = graph.vertices().map(|v| graph.out_degree(v) as f64).collect();
    for _ in 0..sweeps {
        let mut next = vec![0.15f64; n];
        for v in graph.vertices() {
            if out_deg[v.index()] == 0.0 {
                continue;
            }
            let share = 0.85 * rank[v.index()] / out_deg[v.index()];
            for (u, _) in graph.out_edges(v) {
                next[u.index()] += share;
            }
        }
        rank = next;
    }
    rank
}

mod ordered {
    /// Total-order wrapper for non-NaN f32 keys in the Dijkstra heap.
    #[derive(Clone, Copy, PartialEq)]
    pub struct F32(pub f32);
    impl Eq for F32 {}
    impl PartialOrd for F32 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for F32 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::cc::ConnectedComponents;
    use crate::kcore::KCore;
    use crate::pagerank::PageRankDelta;
    use crate::sssp::Sssp;
    use lazygraph_graph::generators::{erdos_renyi, grid2d, Grid2dConfig};
    use lazygraph_graph::GraphBuilder;

    fn weighted_symmetric(n_side: usize, seed: u64) -> Graph {
        let g = grid2d(Grid2dConfig::road(n_side, n_side, seed));
        let mut b = GraphBuilder::new(g.num_vertices());
        b.extend(g.edges());
        b.symmetrize();
        b.randomize_weights(1.0, 10.0, seed);
        b.build()
    }

    #[test]
    fn sequential_sssp_matches_dijkstra() {
        let g = weighted_symmetric(12, 5);
        let seq = run_sequential(&g, &Sssp::new(0u32));
        let dij = dijkstra(&g, VertexId(0));
        assert_eq!(seq, dij);
    }

    #[test]
    fn sequential_bfs_matches_reference() {
        let g = erdos_renyi(300, 1200, 3);
        let seq = run_sequential(&g, &Bfs::new(0u32));
        let reference = bfs_levels(&g, VertexId(0));
        assert_eq!(seq, reference);
    }

    #[test]
    fn sequential_cc_matches_union_find() {
        let g = weighted_symmetric(10, 7);
        let seq = run_sequential(&g, &ConnectedComponents);
        let uf = connected_components(&g);
        assert_eq!(seq, uf);
    }

    #[test]
    fn sequential_kcore_matches_peeling() {
        let g = weighted_symmetric(14, 9);
        for k in [2, 3, 4] {
            let seq = run_sequential(&g, &KCore::new(k));
            let peel = kcore_peeling(&g, k);
            assert_eq!(seq, peel, "k={k}");
        }
    }

    #[test]
    fn sequential_pagerank_near_power_iteration() {
        let g = erdos_renyi(200, 1600, 11);
        let seq = run_sequential(&g, &PageRankDelta { tolerance: 1e-6 });
        let power = pagerank_power(&g, 120);
        for (v, (s, p)) in seq.iter().zip(&power).enumerate() {
            assert!(
                (s.rank - p).abs() < 1e-2 * p.max(1.0),
                "vertex {v}: delta {} vs power {}",
                s.rank,
                p
            );
        }
    }

    #[test]
    fn cc_labels_are_component_minima() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(4u32, 5u32).add_edge(1u32, 2u32).add_edge(2u32, 3u32);
        b.symmetrize();
        let g = b.build();
        let cc = connected_components(&g);
        assert_eq!(cc, vec![0, 1, 1, 1, 4, 4]);
    }

    #[test]
    fn kcore_peeling_on_known_graph() {
        // A triangle plus a pendant vertex: 2-core keeps the triangle.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0u32, 1u32)
            .add_edge(1u32, 2u32)
            .add_edge(2u32, 0u32)
            .add_edge(2u32, 3u32);
        b.symmetrize();
        let g = b.build();
        let core = kcore_peeling(&g, 2);
        assert_eq!(core, vec![2, 2, 2, 0]);
    }
}
