//! Multi-source BFS over a 64-seed bit mask plus the radii/diameter
//! estimator built on it (HADI/flajolet-style but exact for ≤64 seeds).
//!
//! Each of up to 64 seeds owns one bit; a vertex's value packs, per seed,
//! whether the seed has reached it. The ⊕ is bitwise OR (idempotent), so
//! the program stresses a non-numeric idempotent algebra, and running it
//! repeatedly with hop counting yields eccentricity lower bounds and a
//! diameter estimate.

use lazygraph_engine::program::DeltaExchange;
use lazygraph_engine::{EdgeCtx, VertexCtx, VertexProgram};
use lazygraph_graph::{Graph, VertexId};

/// Reachability masks from up to 64 seeds.
#[derive(Clone, Debug)]
pub struct MultiSourceBfs {
    /// The seed vertices (≤ 64).
    pub seeds: Vec<VertexId>,
}

impl MultiSourceBfs {
    /// A multi-source BFS from the given seeds.
    pub fn new(seeds: Vec<VertexId>) -> Self {
        assert!(!seeds.is_empty() && seeds.len() <= 64, "1..=64 seeds");
        MultiSourceBfs { seeds }
    }

    /// `k` deterministic, distinct pseudo-random seeds for an `n`-vertex
    /// graph.
    pub fn spread_seeds(n: usize, k: usize, salt: u64) -> Vec<VertexId> {
        assert!(k <= 64 && k <= n);
        let mut seeds = Vec::with_capacity(k);
        let mut x = salt;
        while seeds.len() < k {
            x = lazygraph_graph::hash::mix64(x);
            let v = VertexId((x % n as u64) as u32);
            if !seeds.contains(&v) {
                seeds.push(v);
            }
        }
        seeds
    }
}

impl VertexProgram for MultiSourceBfs {
    type VData = u64;
    type Delta = u64;

    fn name(&self) -> &'static str {
        "multi-bfs"
    }

    fn init_data(&self, _v: VertexId, _ctx: &VertexCtx) -> u64 {
        0
    }

    fn init_message(&self, v: VertexId, _ctx: &VertexCtx) -> Option<u64> {
        let mask = self
            .seeds
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == v)
            .fold(0u64, |m, (bit, _)| m | (1 << bit));
        (mask != 0).then_some(mask)
    }

    fn sum(&self, a: u64, b: u64) -> u64 {
        a | b
    }

    fn inverse(&self, accum: u64, _a: u64) -> u64 {
        accum // OR is idempotent
    }

    fn apply(&self, _v: VertexId, data: &mut u64, accum: u64, _ctx: &VertexCtx) -> Option<u64> {
        let new_bits = accum & !*data;
        if new_bits == 0 {
            return None;
        }
        *data |= new_bits;
        Some(new_bits)
    }

    fn scatter(
        &self,
        _v: VertexId,
        _data: &u64,
        delta: u64,
        _ctx: &VertexCtx,
        _edge: &EdgeCtx,
    ) -> Option<u64> {
        Some(delta)
    }

    fn idempotent(&self) -> bool {
        true
    }

    fn exchange_policy(&self, coherent: &u64, delta: &u64) -> DeltaExchange {
        // Bits the common view already holds are no-ops for every replica.
        if *delta & !*coherent == 0 {
            DeltaExchange::Drop
        } else {
            DeltaExchange::Send
        }
    }
}

/// Estimates the diameter of `graph` as the maximum, over `k` spread seeds,
/// of the seed's BFS eccentricity (a lower bound on the true diameter;
/// exact on small graphs when a peripheral vertex is sampled). Sequential
/// helper used by examples and tests.
pub fn estimate_diameter(graph: &Graph, k: usize, salt: u64) -> u32 {
    let seeds = MultiSourceBfs::spread_seeds(graph.num_vertices(), k.min(64), salt);
    let mut best = 0u32;
    for s in seeds {
        let levels = crate::reference::bfs_levels(graph, s);
        let ecc = levels
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        best = best.max(ecc);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{bfs_levels, run_sequential};
    use lazygraph_graph::generators::{erdos_renyi, grid2d, Grid2dConfig};

    #[test]
    fn masks_match_individual_bfs() {
        let g = erdos_renyi(200, 800, 31);
        let seeds = MultiSourceBfs::spread_seeds(g.num_vertices(), 8, 1);
        let program = MultiSourceBfs::new(seeds.clone());
        let masks = run_sequential(&g, &program);
        for (bit, &s) in seeds.iter().enumerate() {
            let levels = bfs_levels(&g, s);
            for v in g.vertices() {
                let reached = levels[v.index()] != u32::MAX;
                let bit_set = masks[v.index()] & (1 << bit) != 0;
                assert_eq!(reached, bit_set, "seed {s:?} vertex {v:?}");
            }
        }
    }

    #[test]
    fn spread_seeds_distinct_and_deterministic() {
        let a = MultiSourceBfs::spread_seeds(1000, 16, 9);
        let b = MultiSourceBfs::spread_seeds(1000, 16, 9);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn diameter_of_a_path_like_lattice() {
        // A 1×40 lattice is a path: diameter 39.
        let g = grid2d(Grid2dConfig {
            rows: 1,
            cols: 40,
            shortcut_fraction: 0.0,
            shortcut_radius: 1,
            seed: 0,
            symmetric: true,
        });
        let d = estimate_diameter(&g, 16, 3);
        assert!(d >= 30, "path diameter estimate {d} too low");
        assert!(d <= 39);
    }

    #[test]
    fn or_algebra_laws() {
        let p = MultiSourceBfs::new(vec![VertexId(0)]);
        assert_eq!(p.sum(0b101, 0b011), 0b111);
        assert_eq!(p.sum(0b101, 0b101), 0b101);
        assert!(p.idempotent());
        assert_eq!(
            p.exchange_policy(&0b111, &0b101),
            lazygraph_engine::program::DeltaExchange::Drop
        );
        assert_eq!(
            p.exchange_policy(&0b001, &0b101),
            lazygraph_engine::program::DeltaExchange::Send
        );
    }
}
