//! k-core decomposition (paper Fig. 1(a), Eqs. 1–2).
//!
//! Iteratively deletes vertices with fewer than `k` surviving neighbours.
//! `v.core` starts at the degree; every deleted neighbour sends `1` per
//! connecting edge; a vertex whose core drops below `k` is deleted
//! (core ← 0) and floods `1` to its neighbours exactly once. Deletion
//! counts are additive, so the lazy coherency algebra applies with true
//! subtraction as `Inverse`.
//!
//! Run on symmetrised graphs: `out_degree` is then the undirected degree
//! and scatters reach all neighbours.

use lazygraph_engine::program::DeltaExchange;
use lazygraph_engine::{EdgeCtx, VertexCtx, VertexProgram};
use lazygraph_graph::VertexId;

/// The k-core decomposition vertex program.
#[derive(Clone, Copy, Debug)]
pub struct KCore {
    /// Minimum degree of the core subgraph.
    pub k: u32,
}

impl KCore {
    /// k-core with the given `k` (the paper's example uses 3).
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        KCore { k }
    }
}

impl VertexProgram for KCore {
    type VData = u32;
    type Delta = u32;

    fn name(&self) -> &'static str {
        "kcore"
    }

    fn init_data(&self, _v: VertexId, ctx: &VertexCtx) -> u32 {
        // On a symmetrised graph, out-degree == undirected degree.
        ctx.out_degree
    }

    fn init_message(&self, _v: VertexId, _ctx: &VertexCtx) -> Option<u32> {
        // Activate everyone with a zero deletion count: the first apply
        // deletes every vertex whose initial degree is already below k.
        Some(0)
    }

    fn sum(&self, a: u32, b: u32) -> u32 {
        a + b
    }

    fn inverse(&self, accum: u32, a: u32) -> u32 {
        accum - a
    }

    fn apply(&self, _v: VertexId, data: &mut u32, accum: u32, _ctx: &VertexCtx) -> Option<u32> {
        if *data == 0 {
            return None; // already deleted
        }
        *data = data.saturating_sub(accum);
        if *data < self.k {
            *data = 0;
            Some(1) // flood the deletion exactly once
        } else {
            None
        }
    }

    fn scatter(
        &self,
        _v: VertexId,
        _data: &u32,
        delta: u32,
        _ctx: &VertexCtx,
        _edge: &EdgeCtx,
    ) -> Option<u32> {
        Some(delta)
    }

    fn exchange_policy(&self, coherent: &u32, _delta: &u32) -> DeltaExchange {
        // Deletion counts aimed at an already-deleted vertex are no-ops
        // for every replica (apply ignores them once core == 0).
        if *coherent == 0 {
            DeltaExchange::Drop
        } else {
            DeltaExchange::Send
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(degree: u32) -> VertexCtx {
        VertexCtx {
            out_degree: degree,
            in_degree: degree,
            degree: 2 * degree,
            num_vertices: 16,
        }
    }

    #[test]
    fn low_degree_vertex_deleted_at_init() {
        let p = KCore::new(3);
        let mut core = p.init_data(VertexId(0), &ctx(2));
        assert_eq!(core, 2);
        let out = p.apply(VertexId(0), &mut core, 0, &ctx(2));
        assert_eq!(core, 0);
        assert_eq!(out, Some(1), "deletion floods 1");
    }

    #[test]
    fn surviving_vertex_stays_quiet() {
        let p = KCore::new(3);
        let mut core = 5u32;
        assert_eq!(p.apply(VertexId(0), &mut core, 1, &ctx(5)), None);
        assert_eq!(core, 4);
    }

    #[test]
    fn deletion_happens_once() {
        let p = KCore::new(3);
        let mut core = 3u32;
        assert_eq!(p.apply(VertexId(0), &mut core, 1, &ctx(3)), Some(1));
        assert_eq!(core, 0);
        // Further deletion notices are ignored.
        assert_eq!(p.apply(VertexId(0), &mut core, 2, &ctx(3)), None);
        assert_eq!(core, 0);
    }

    #[test]
    fn saturating_subtraction() {
        let p = KCore::new(2);
        let mut core = 3u32;
        // A burst of 10 deletions at once must not underflow.
        assert_eq!(p.apply(VertexId(0), &mut core, 10, &ctx(3)), Some(1));
        assert_eq!(core, 0);
    }

    #[test]
    fn additive_inverse_law() {
        let p = KCore::new(3);
        assert_eq!(p.inverse(p.sum(4, 9), 4), 9);
        assert!(!p.idempotent());
    }
}
