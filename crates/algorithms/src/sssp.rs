//! Single-source shortest paths (SSSP), one of the paper's four evaluation
//! workloads. Min-based ⊕, hence idempotent: duplicate or regrouped
//! deliveries are harmless and `Inverse` is the identity.

use lazygraph_engine::program::DeltaExchange;
use lazygraph_engine::{EdgeCtx, VertexCtx, VertexProgram};
use lazygraph_graph::VertexId;

/// The SSSP vertex program. Distances are `f32` like edge weights.
#[derive(Clone, Copy, Debug)]
pub struct Sssp {
    /// The source vertex.
    pub source: VertexId,
}

impl Sssp {
    /// SSSP from `source`.
    pub fn new(source: impl Into<VertexId>) -> Self {
        Sssp {
            source: source.into(),
        }
    }
}

impl VertexProgram for Sssp {
    type VData = f32;
    type Delta = f32;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn init_data(&self, _v: VertexId, _ctx: &VertexCtx) -> f32 {
        // The source too starts at ∞; its initial message 0.0 relaxes it in
        // the first apply (and thereby triggers its initial scatter).
        f32::INFINITY
    }

    fn init_message(&self, v: VertexId, _ctx: &VertexCtx) -> Option<f32> {
        (v == self.source).then_some(0.0)
    }

    fn sum(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }

    fn inverse(&self, accum: f32, _a: f32) -> f32 {
        accum // idempotent ⊕: re-applying one's own delta is a no-op
    }

    fn apply(&self, _v: VertexId, data: &mut f32, accum: f32, _ctx: &VertexCtx) -> Option<f32> {
        if accum < *data {
            *data = accum;
            Some(accum)
        } else {
            None
        }
    }

    fn scatter(
        &self,
        _v: VertexId,
        _data: &f32,
        delta: f32,
        _ctx: &VertexCtx,
        edge: &EdgeCtx,
    ) -> Option<f32> {
        debug_assert!(edge.weight >= 0.0, "SSSP requires non-negative weights");
        Some(delta + edge.weight)
    }

    fn idempotent(&self) -> bool {
        true
    }

    fn exchange_policy(&self, coherent: &f32, delta: &f32) -> DeltaExchange {
        // A candidate no better than the last common view is a no-op for
        // every replica (distances only decrease from there).
        if *delta >= *coherent {
            DeltaExchange::Drop
        } else {
            DeltaExchange::Send
        }
    }

    fn priority(&self, data: &f32, accum: &f32) -> f64 {
        // Urgency = how much this candidate would shorten the current
        // distance. A non-improving candidate prices at ≤ 0 (the
        // scheduler parks it: applying it would be a no-op), and the
        // first relaxation of an ∞ vertex prices at ∞ (top bucket).
        (*data - *accum) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> VertexCtx {
        VertexCtx {
            out_degree: 1,
            in_degree: 1,
            degree: 2,
            num_vertices: 4,
        }
    }

    #[test]
    fn source_relaxes_from_infinity() {
        let p = Sssp::new(2u32);
        assert_eq!(p.init_message(VertexId(2), &ctx()), Some(0.0));
        assert_eq!(p.init_message(VertexId(1), &ctx()), None);
        let mut d = p.init_data(VertexId(2), &ctx());
        assert_eq!(d, f32::INFINITY);
        let out = p.apply(VertexId(2), &mut d, 0.0, &ctx());
        assert_eq!(d, 0.0);
        assert_eq!(out, Some(0.0), "source must scatter its distance");
    }

    #[test]
    fn worse_distance_is_ignored() {
        let p = Sssp::new(0u32);
        let mut d = 3.0f32;
        assert_eq!(p.apply(VertexId(1), &mut d, 5.0, &ctx()), None);
        assert_eq!(d, 3.0);
        assert_eq!(p.apply(VertexId(1), &mut d, 1.5, &ctx()), Some(1.5));
        assert_eq!(d, 1.5);
    }

    #[test]
    fn scatter_adds_weight() {
        let p = Sssp::new(0u32);
        let e = EdgeCtx {
            dst: VertexId(1),
            weight: 2.5,
        };
        assert_eq!(p.scatter(VertexId(0), &0.0, 4.0, &ctx(), &e), Some(6.5));
    }

    #[test]
    fn priority_is_the_improvement() {
        let p = Sssp::new(0u32);
        assert_eq!(p.priority(&5.0, &3.0), 2.0);
        assert!(p.priority(&3.0, &5.0) <= 0.0, "non-improving parks");
        assert_eq!(p.priority(&f32::INFINITY, &3.0), f64::INFINITY);
    }

    #[test]
    fn min_is_idempotent_and_inverse_is_identity() {
        let p = Sssp::new(0u32);
        assert!(p.idempotent());
        assert_eq!(p.sum(3.0, 5.0), 3.0);
        assert_eq!(p.sum(3.0, 3.0), 3.0);
        assert_eq!(p.inverse(3.0, 5.0), 3.0);
    }
}
