//! Personalised PageRank (PPR) by residual push — the single-seed variant
//! of PageRank-Delta. The teleport mass is concentrated on one seed vertex,
//! so ranks measure proximity to the seed. Same additive delta algebra as
//! global PageRank; a second tolerance-gated workload for the engines.

use lazygraph_engine::program::DeltaExchange;
use lazygraph_engine::{EdgeCtx, VertexCtx, VertexProgram};
use lazygraph_graph::VertexId;

use crate::pagerank::{PageRankData, DAMPING};

/// The personalised-PageRank vertex program.
#[derive(Clone, Copy, Debug)]
pub struct PersonalizedPageRank {
    /// The seed vertex receiving all teleport mass.
    pub seed: VertexId,
    /// Flush threshold on accumulated pending mass.
    pub tolerance: f64,
}

impl PersonalizedPageRank {
    /// PPR from `seed` with the default 1e-4 tolerance.
    pub fn new(seed: impl Into<VertexId>) -> Self {
        PersonalizedPageRank {
            seed: seed.into(),
            tolerance: 1e-4,
        }
    }
}

impl VertexProgram for PersonalizedPageRank {
    type VData = PageRankData;
    type Delta = f64;

    fn name(&self) -> &'static str {
        "ppr"
    }

    fn init_data(&self, _v: VertexId, _ctx: &VertexCtx) -> PageRankData {
        PageRankData::default()
    }

    fn init_message(&self, v: VertexId, _ctx: &VertexCtx) -> Option<f64> {
        // All teleport mass starts at the seed: rank(seed) gains
        // (1 − d) = 0.15-style mass scaled to 1.0 for readability.
        (v == self.seed).then_some(1.0 / DAMPING)
    }

    fn sum(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn inverse(&self, accum: f64, a: f64) -> f64 {
        accum - a
    }

    fn apply(
        &self,
        _v: VertexId,
        data: &mut PageRankData,
        accum: f64,
        _ctx: &VertexCtx,
    ) -> Option<f64> {
        let delta = DAMPING * accum;
        data.rank += delta;
        data.pending += delta;
        if data.pending.abs() > self.tolerance {
            let out = data.pending;
            data.pending = 0.0;
            Some(out)
        } else {
            None
        }
    }

    fn scatter(
        &self,
        _v: VertexId,
        _data: &PageRankData,
        delta: f64,
        ctx: &VertexCtx,
        _edge: &EdgeCtx,
    ) -> Option<f64> {
        if ctx.out_degree == 0 {
            None
        } else {
            Some(delta / ctx.out_degree as f64)
        }
    }

    fn exchange_policy(&self, _coherent: &PageRankData, delta: &f64) -> DeltaExchange {
        if delta.abs() < self.tolerance {
            DeltaExchange::Defer
        } else {
            DeltaExchange::Send
        }
    }

    fn priority(&self, _data: &PageRankData, accum: &f64) -> f64 {
        // Residual push: urgency is the unapplied residual mass.
        accum.abs()
    }
}

/// Sequential reference: dense personalised power iteration.
pub fn ppr_power(graph: &lazygraph_graph::Graph, seed: VertexId, sweeps: usize) -> Vec<f64> {
    let n = graph.num_vertices();
    let out_deg: Vec<f64> = graph
        .vertices()
        .map(|v| graph.out_degree(v) as f64)
        .collect();
    let mut rank = vec![0.0f64; n];
    for _ in 0..sweeps {
        let mut next = vec![0.0f64; n];
        next[seed.index()] = 1.0;
        for v in graph.vertices() {
            if out_deg[v.index()] == 0.0 || rank[v.index()] == 0.0 {
                continue;
            }
            let share = DAMPING * rank[v.index()] / out_deg[v.index()];
            for (u, _) in graph.out_edges(v) {
                next[u.index()] += share;
            }
        }
        rank = next;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_sequential;
    use lazygraph_graph::generators::erdos_renyi;

    #[test]
    fn mass_concentrates_near_seed() {
        let g = erdos_renyi(300, 1500, 21);
        let seed = VertexId(7);
        let ranks = run_sequential(&g, &PersonalizedPageRank::new(seed));
        let seed_rank = ranks[seed.index()].rank;
        let max_other = ranks
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != seed.index())
            .map(|(_, d)| d.rank)
            .fold(0.0f64, f64::max);
        assert!(
            seed_rank > max_other,
            "seed rank {seed_rank} must dominate {max_other}"
        );
    }

    #[test]
    fn matches_power_iteration() {
        let g = erdos_renyi(200, 1400, 22);
        let seed = VertexId(3);
        let p = PersonalizedPageRank {
            seed,
            tolerance: 1e-8,
        };
        let push = run_sequential(&g, &p);
        let power = ppr_power(&g, seed, 120);
        for (v, (got, want)) in push.iter().zip(&power).enumerate() {
            assert!(
                (got.rank - want).abs() < 1e-2 * want.max(0.1),
                "vertex {v}: {} vs {}",
                got.rank,
                want
            );
        }
    }

    #[test]
    fn non_seed_vertices_start_silent() {
        let p = PersonalizedPageRank::new(5u32);
        let ctx = VertexCtx {
            out_degree: 2,
            in_degree: 2,
            degree: 4,
            num_vertices: 10,
        };
        assert!(p.init_message(VertexId(4), &ctx).is_none());
        assert!(p.init_message(VertexId(5), &ctx).is_some());
    }
}
