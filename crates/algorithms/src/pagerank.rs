//! PageRank-Delta (paper §3.1, Fig. 3 / Eq. 4).
//!
//! Each vertex accumulates *changes* in rank mass; once the accumulated
//! pending delta exceeds the tolerance it is flushed to out-neighbours,
//! scaled by `1/outDegree`. With damping 0.85 and teleport 0.15 the
//! fixpoint satisfies the paper's Eq. 3
//! (`PR(i) = 0.15 + 0.85 Σ PR(j)/outDeg(j)`).
//!
//! Formulated so that every quantity a vertex emits is additive: the lazy
//! coherency protocol may regroup deliveries arbitrarily and the emitted
//! totals still telescope to the same fixpoint (§3.5).

use lazygraph_engine::program::DeltaExchange;
use lazygraph_engine::{EdgeCtx, VertexCtx, VertexProgram};
use lazygraph_graph::VertexId;
use lazygraph_net::{NetError, Wire, WireReader};

/// Vertex state: the converged rank plus the not-yet-flushed delta.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct PageRankData {
    /// Current rank estimate.
    pub rank: f64,
    /// Accumulated rank mass not yet propagated to neighbours.
    pub pending: f64,
}

/// Both components ride as IEEE-754 bit patterns, so a TCP run's vertex
/// data is bit-identical to an in-proc run's.
impl Wire for PageRankData {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rank.encode(out);
        self.pending.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(PageRankData {
            rank: f64::decode(r)?,
            pending: f64::decode(r)?,
        })
    }
}

/// The PageRank-Delta vertex program.
#[derive(Clone, Copy, Debug)]
pub struct PageRankDelta {
    /// Flush threshold: a vertex scatters once `|pending| > tolerance`.
    pub tolerance: f64,
}

impl Default for PageRankDelta {
    fn default() -> Self {
        PageRankDelta { tolerance: 1e-3 }
    }
}

/// Damping factor (paper uses 0.85).
pub const DAMPING: f64 = 0.85;
/// Teleport mass (paper uses 0.15).
pub const BASE_RANK: f64 = 0.15;

impl VertexProgram for PageRankDelta {
    type VData = PageRankData;
    type Delta = f64;

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn init_data(&self, _v: VertexId, _ctx: &VertexCtx) -> PageRankData {
        PageRankData::default()
    }

    fn init_message(&self, _v: VertexId, _ctx: &VertexCtx) -> Option<f64> {
        // First apply produces Δ = 0.85 · (0.15/0.85) = 0.15 = BASE_RANK.
        Some(BASE_RANK / DAMPING)
    }

    fn sum(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn inverse(&self, accum: f64, a: f64) -> f64 {
        accum - a
    }

    fn apply(
        &self,
        _v: VertexId,
        data: &mut PageRankData,
        accum: f64,
        _ctx: &VertexCtx,
    ) -> Option<f64> {
        let delta = DAMPING * accum;
        data.rank += delta;
        data.pending += delta;
        if data.pending.abs() > self.tolerance {
            let out = data.pending;
            data.pending = 0.0;
            Some(out)
        } else {
            None
        }
    }

    fn scatter(
        &self,
        _v: VertexId,
        _data: &PageRankData,
        delta: f64,
        ctx: &VertexCtx,
        _edge: &EdgeCtx,
    ) -> Option<f64> {
        if ctx.out_degree == 0 {
            None
        } else {
            Some(delta / ctx.out_degree as f64)
        }
    }

    fn exchange_policy(&self, _coherent: &PageRankData, delta: &f64) -> DeltaExchange {
        // Sub-tolerance mass may wait for more to accumulate — the same
        // error model the scatter threshold already defines.
        if delta.abs() < self.tolerance {
            DeltaExchange::Defer
        } else {
            DeltaExchange::Send
        }
    }

    fn priority(&self, _data: &PageRankData, accum: &f64) -> f64 {
        // Maiter-style urgency: the pending inbox mass. Sub-tolerance
        // residue parks (its mass is conserved in the inbox) until more
        // arrives — the same error model the flush threshold defines.
        accum.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(out_degree: u32) -> VertexCtx {
        VertexCtx {
            out_degree,
            in_degree: 0,
            degree: out_degree,
            num_vertices: 10,
        }
    }

    #[test]
    fn first_apply_yields_base_rank() {
        let p = PageRankDelta::default();
        let mut d = p.init_data(VertexId(0), &ctx(2));
        let init = p.init_message(VertexId(0), &ctx(2)).unwrap();
        let out = p.apply(VertexId(0), &mut d, init, &ctx(2));
        assert!((d.rank - BASE_RANK).abs() < 1e-12);
        let flushed = out.expect("0.15 exceeds the 1e-3 tolerance");
        assert!((flushed - BASE_RANK).abs() < 1e-12);
        assert_eq!(d.pending, 0.0);
    }

    #[test]
    fn small_deltas_accumulate_until_threshold() {
        let p = PageRankDelta { tolerance: 0.1 };
        let mut d = PageRankData::default();
        // Three sub-threshold applies (pending 0.0765), then the fourth
        // (pending 0.102) tips it over.
        assert!(p.apply(VertexId(0), &mut d, 0.03, &ctx(1)).is_none());
        assert!(p.apply(VertexId(0), &mut d, 0.03, &ctx(1)).is_none());
        assert!(p.apply(VertexId(0), &mut d, 0.03, &ctx(1)).is_none());
        let out = p.apply(VertexId(0), &mut d, 0.03, &ctx(1)).unwrap();
        // Everything accumulated is emitted at once.
        assert!((out - 4.0 * 0.85 * 0.03).abs() < 1e-12);
        assert_eq!(d.pending, 0.0);
        // The rank kept every contribution regardless of flush timing.
        assert!((d.rank - 4.0 * 0.85 * 0.03).abs() < 1e-12);
    }

    #[test]
    fn scatter_divides_by_out_degree() {
        let p = PageRankDelta::default();
        let e = EdgeCtx {
            dst: VertexId(1),
            weight: 1.0,
        };
        assert_eq!(
            p.scatter(VertexId(0), &PageRankData::default(), 0.8, &ctx(4), &e),
            Some(0.2)
        );
        assert_eq!(
            p.scatter(VertexId(0), &PageRankData::default(), 0.8, &ctx(0), &e),
            None,
            "sinks drop mass"
        );
    }

    #[test]
    fn priority_is_inbox_magnitude() {
        let p = PageRankDelta::default();
        let d = PageRankData::default();
        assert_eq!(p.priority(&d, &0.25), 0.25);
        assert_eq!(p.priority(&d, &-0.25), 0.25, "negative mass is as urgent");
    }

    #[test]
    fn sum_inverse_laws() {
        let p = PageRankDelta::default();
        let s = p.sum(0.25, 0.5);
        assert_eq!(p.inverse(s, 0.25), 0.5);
        assert_eq!(p.sum(0.1, 0.2), p.sum(0.2, 0.1));
        assert!(!p.idempotent());
    }
}
