//! Single-source *widest* path (maximum bottleneck bandwidth) — a max–min
//! algebra workload. Like SSSP it is idempotent (`⊕ = max`), but the
//! per-edge transform is `min(delta, capacity)` instead of `+weight`,
//! exercising a different corner of the delta contract.

use lazygraph_engine::program::DeltaExchange;
use lazygraph_engine::{EdgeCtx, VertexCtx, VertexProgram};
use lazygraph_graph::VertexId;

/// The widest-path vertex program: every vertex converges to the maximum,
/// over all paths from the source, of the minimum edge weight along the
/// path (`0.0` if unreachable). Edge weights are capacities.
#[derive(Clone, Copy, Debug)]
pub struct WidestPath {
    /// The source vertex.
    pub source: VertexId,
}

impl WidestPath {
    /// Widest paths from `source`.
    pub fn new(source: impl Into<VertexId>) -> Self {
        WidestPath {
            source: source.into(),
        }
    }
}

impl VertexProgram for WidestPath {
    type VData = f32;
    type Delta = f32;

    fn name(&self) -> &'static str {
        "widest-path"
    }

    fn init_data(&self, _v: VertexId, _ctx: &VertexCtx) -> f32 {
        0.0
    }

    fn init_message(&self, v: VertexId, _ctx: &VertexCtx) -> Option<f32> {
        (v == self.source).then_some(f32::INFINITY)
    }

    fn sum(&self, a: f32, b: f32) -> f32 {
        a.max(b)
    }

    fn inverse(&self, accum: f32, _a: f32) -> f32 {
        accum // idempotent max
    }

    fn apply(&self, _v: VertexId, data: &mut f32, accum: f32, _ctx: &VertexCtx) -> Option<f32> {
        if accum > *data {
            *data = accum;
            Some(accum)
        } else {
            None
        }
    }

    fn scatter(
        &self,
        _v: VertexId,
        _data: &f32,
        delta: f32,
        _ctx: &VertexCtx,
        edge: &EdgeCtx,
    ) -> Option<f32> {
        debug_assert!(edge.weight >= 0.0, "capacities must be non-negative");
        Some(delta.min(edge.weight))
    }

    fn idempotent(&self) -> bool {
        true
    }

    fn exchange_policy(&self, coherent: &f32, delta: &f32) -> DeltaExchange {
        // Widths only grow; a candidate no wider than the common view is
        // useless to every replica.
        if *delta <= *coherent {
            DeltaExchange::Drop
        } else {
            DeltaExchange::Send
        }
    }
}

/// Sequential reference: Dijkstra-style widest path with a max-heap.
pub fn widest_path_reference(graph: &lazygraph_graph::Graph, source: VertexId) -> Vec<f32> {
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct Item(f32, u32);
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
    let n = graph.num_vertices();
    let mut width = vec![0.0f32; n];
    let mut heap = BinaryHeap::new();
    width[source.index()] = f32::INFINITY;
    heap.push(Item(f32::INFINITY, source.0));
    while let Some(Item(w, v)) = heap.pop() {
        if w < width[v as usize] {
            continue;
        }
        for (u, cap) in graph.out_edges(VertexId(v)) {
            let nw = w.min(cap);
            if nw > width[u.index()] {
                width[u.index()] = nw;
                heap.push(Item(nw, u.0));
            }
        }
    }
    width
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_sequential;
    use lazygraph_graph::GraphBuilder;

    fn capacity_graph() -> lazygraph_graph::Graph {
        // 0 -10-> 1 -2-> 3 ; 0 -4-> 2 -5-> 3: widest 0→3 is min(4,5)=4.
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0u32, 1u32, 10.0)
            .add_weighted_edge(1u32, 3u32, 2.0)
            .add_weighted_edge(0u32, 2u32, 4.0)
            .add_weighted_edge(2u32, 3u32, 5.0);
        b.build()
    }

    #[test]
    fn hand_computed_bottleneck() {
        let g = capacity_graph();
        let w = run_sequential(&g, &WidestPath::new(0u32));
        assert_eq!(w[0], f32::INFINITY);
        assert_eq!(w[1], 10.0);
        assert_eq!(w[2], 4.0);
        assert_eq!(w[3], 4.0, "bottleneck must route via the 4/5 branch");
    }

    #[test]
    fn sequential_matches_reference_on_random_graph() {
        let base = lazygraph_graph::generators::erdos_renyi(200, 900, 3);
        let mut b = GraphBuilder::new(base.num_vertices());
        b.extend(base.edges());
        b.randomize_weights(1.0, 100.0, 3);
        let g = b.build();
        let seq = run_sequential(&g, &WidestPath::new(0u32));
        let reference = widest_path_reference(&g, VertexId(0));
        assert_eq!(seq, reference);
    }

    #[test]
    fn unreachable_stays_zero() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0u32, 1u32, 7.0);
        let g = b.build();
        let w = run_sequential(&g, &WidestPath::new(0u32));
        assert_eq!(w[2], 0.0);
    }

    #[test]
    fn algebra_is_max_min() {
        let p = WidestPath::new(0u32);
        assert_eq!(p.sum(3.0, 5.0), 5.0);
        assert!(p.idempotent());
        let e = EdgeCtx {
            dst: VertexId(1),
            weight: 2.0,
        };
        let ctx = VertexCtx {
            out_degree: 1,
            in_degree: 0,
            degree: 1,
            num_vertices: 2,
        };
        assert_eq!(p.scatter(VertexId(0), &9.0, 9.0, &ctx, &e), Some(2.0));
    }
}
