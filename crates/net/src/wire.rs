//! The `Wire` codec: hand-rolled, deterministic little-endian encoding.
//!
//! The build container has no crates.io access, so there is no serde;
//! every type that crosses the mesh implements [`Wire`] by hand. The
//! format is position-based (no field names, no varints, no padding):
//!
//! * fixed-width integers are little-endian;
//! * `f32`/`f64` are their IEEE-754 bit patterns, little-endian — decode
//!   reproduces the *bit-exact* value, which is what makes TCP runs
//!   bitwise-identical to in-proc runs;
//! * `bool` and `Option` discriminants are single tag bytes (0/1);
//! * sequences are a `u32` count followed by the elements.
//!
//! Laws (tested here and property-tested in `tests/wire_transport.rs`):
//!
//! 1. **Round trip**: `decode(encode(x)) == x` (bitwise for floats);
//! 2. **Self-delimiting**: decode consumes exactly the bytes encode
//!    produced, so values concatenate without separators;
//! 3. **Determinism**: encoding the same value twice yields identical
//!    bytes (no maps, no addresses, no ambient state).

use crate::error::NetError;

/// A cursor over received bytes. Decoders pull from the front; running
/// past the end is a typed [`NetError::Truncated`], never a panic.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(NetError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Takes one byte.
    #[inline]
    pub fn take_u8(&mut self) -> Result<u8, NetError> {
        let s = self.take(1)?;
        Ok(s[0])
    }

    /// Fails unless the reader is fully consumed — the "exactly the bytes
    /// encode produced" law, enforced at every frame boundary.
    pub fn finish(self) -> Result<(), NetError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(NetError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }
}

/// Deterministic little-endian encode/decode for mesh-crossing types.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError>;

    /// Convenience: encode into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decode a value that must occupy `buf` exactly.
    fn from_wire(buf: &[u8]) -> Result<Self, NetError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
                let n = std::mem::size_of::<$t>();
                let s = r.take(n)?;
                let mut b = [0u8; std::mem::size_of::<$t>()];
                b.copy_from_slice(s);
                Ok(<$t>::from_le_bytes(b))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Wire for f32 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(f32::from_bits(u32::decode(r)?))
    }
}

impl Wire for f64 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Wire for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(NetError::BadTag { tag, ty: "bool" }),
        }
    }
}

impl Wire for () {
    #[inline]
    fn encode(&self, _out: &mut Vec<u8>) {}
    #[inline]
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(())
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: Wire> Wire for Option<T> {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(NetError::BadTag { tag, ty: "Option" }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let len = u32::decode(r)? as usize;
        // A corrupt length prefix must not drive a giant allocation:
        // reserve no more than the bytes actually present can justify.
        let mut out = Vec::with_capacity(len.min(r.remaining()).min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let len = u32::decode(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| NetError::BadTag {
            tag: 0xff,
            ty: "String (utf-8)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).unwrap();
        assert_eq!(back, v);
        // Determinism: re-encoding yields identical bytes.
        assert_eq!(back.to_wire(), bytes);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-1i8);
        round_trip(i16::MIN);
        round_trip(-123_456i32);
        round_trip(i64::MIN);
        round_trip(true);
        round_trip(false);
        round_trip(());
    }

    #[test]
    fn floats_round_trip_bitwise() {
        for v in [0.0f64, -0.0, 1.5, f64::MIN_POSITIVE, f64::MAX, f64::INFINITY] {
            let back = f64::from_wire(&v.to_wire()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // NaN payloads survive too (PartialEq would hide this).
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        assert_eq!(f64::from_wire(&nan.to_wire()).unwrap().to_bits(), nan.to_bits());
        let nan32 = f32::from_bits(0x7fc0_1234);
        assert_eq!(f32::from_wire(&nan32.to_wire()).unwrap().to_bits(), nan32.to_bits());
    }

    #[test]
    fn little_endian_layout() {
        assert_eq!(0x0102_0304u32.to_wire(), vec![4, 3, 2, 1]);
        assert_eq!(1.0f64.to_wire(), vec![0, 0, 0, 0, 0, 0, 0xf0, 0x3f]);
    }

    #[test]
    fn compounds_round_trip() {
        round_trip((7u32, -2.5f64));
        round_trip((1u8, 2u16, 3u32));
        round_trip(Some(42u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<f64>::new());
        round_trip("héllo wörld".to_string());
        round_trip(vec![(3u32, 1.25f32), (9, -0.5)]);
    }

    #[test]
    fn concatenation_is_self_delimiting() {
        let mut buf = Vec::new();
        5u32.encode(&mut buf);
        (-1.5f64).encode(&mut buf);
        vec![1u8, 2].encode(&mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(u32::decode(&mut r).unwrap(), 5);
        assert_eq!(f64::decode(&mut r).unwrap(), -1.5);
        assert_eq!(Vec::<u8>::decode(&mut r).unwrap(), vec![1, 2]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let bytes = 0xAABB_CCDDu32.to_wire();
        let err = u32::from_wire(&bytes[..3]).unwrap_err();
        assert!(matches!(err, NetError::Truncated { needed: 4, have: 3 }));
        let err = Vec::<u64>::from_wire(&[2, 0, 0, 0, 1]).unwrap_err();
        assert!(matches!(err, NetError::Truncated { .. }));
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(matches!(
            bool::from_wire(&[2]).unwrap_err(),
            NetError::BadTag { tag: 2, ty: "bool" }
        ));
        assert!(matches!(
            Option::<u8>::from_wire(&[9, 0]).unwrap_err(),
            NetError::BadTag { tag: 9, .. }
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 1u32.to_wire();
        bytes.push(0);
        assert!(matches!(
            u32::from_wire(&bytes).unwrap_err(),
            NetError::TrailingBytes { extra: 1 }
        ));
    }

    #[test]
    fn corrupt_vec_length_does_not_overallocate() {
        // Length claims 4 billion elements; only 4 bytes follow.
        let mut bytes = u32::MAX.to_wire();
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        let err = Vec::<u64>::from_wire(&bytes).unwrap_err();
        assert!(matches!(err, NetError::Truncated { .. }));
    }
}
