//! Length-prefixed framing over a byte stream.
//!
//! Every frame on a mesh socket is
//!
//! ```text
//! [payload_len: u32 LE] [kind: u8] [payload: payload_len bytes]
//! ```
//!
//! `payload_len` counts only the payload (not the 5-byte header), and is
//! capped at [`MAX_FRAME`] so a corrupt or adversarial prefix cannot
//! drive a giant allocation. Three frame kinds exist:
//!
//! * **Data** — one `Batch` worth of encoded items plus its routing
//!   header; the payload layout is owned by the cluster layer (it is
//!   `Wire`-encoded there, this layer just moves bytes).
//! * **Hello** — the first frame on every connection; payload is the
//!   sender's machine id as `u32`. Lets the acceptor learn who dialed.
//! * **Shutdown** — clean-close handshake; payload is the sender's
//!   machine id. A peer that disappears *without* sending this surfaces
//!   as [`NetError::PeerClosed`] instead of a silent hang.
//!
//! [`FrameReader`] is deliberately *incremental*: mesh sockets run with
//! a read timeout so reader threads can notice a poisoned mesh, and a
//! timeout can fire mid-frame. The reader keeps partial header/payload
//! bytes across `poll` calls, so torn reads (even 1 byte at a time) and
//! timeout ticks never lose data.

use std::io::{Read, Write};

use crate::error::NetError;
use crate::wire::{Wire, WireReader};

/// Sanity cap on a single frame's payload (64 MiB). Real batches are
/// orders of magnitude smaller; anything larger is a corrupt length
/// prefix or a protocol bug.
pub const MAX_FRAME: usize = 64 << 20;

/// Fixed header size: 4-byte length + 1-byte kind.
pub const HEADER_LEN: usize = 5;

/// Cap on a [`FrameReader`]'s recycled-payload free list. One reader
/// serves one peer link, and the consumer recycles a frame's payload as
/// soon as it has been routed, so a couple of buffers in flight per link
/// is the steady state; anything beyond the cap is burst capacity not
/// worth pinning.
pub const FRAME_POOL_CAP: usize = 8;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// An encoded batch of mesh items.
    Data,
    /// Connection-opening identification.
    Hello,
    /// Clean-close handshake.
    Shutdown,
    /// Reconnection-opening identification: a restarted worker dialing
    /// back into an established mesh. Unlike [`FrameKind::Hello`] the
    /// payload also carries the round the dialer will resume sending
    /// from, so the acceptor knows which logged rounds to replay.
    Rejoin,
    /// A live-migration exchange: replica state and topology records for
    /// vertices moving between machines at a coherency barrier. Routed
    /// exactly like [`FrameKind::Data`] (same round ordering, same replay
    /// log); the distinct tag exists so migration traffic is countable on
    /// the wire.
    Migrate,
}

impl FrameKind {
    /// The on-wire tag byte.
    #[inline]
    pub fn as_u8(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Hello => 1,
            FrameKind::Shutdown => 2,
            FrameKind::Rejoin => 3,
            FrameKind::Migrate => 4,
        }
    }

    /// Parses a tag byte.
    #[inline]
    pub fn from_u8(tag: u8) -> Result<Self, NetError> {
        match tag {
            0 => Ok(FrameKind::Data),
            1 => Ok(FrameKind::Hello),
            2 => Ok(FrameKind::Shutdown),
            3 => Ok(FrameKind::Rejoin),
            4 => Ok(FrameKind::Migrate),
            tag => Err(NetError::BadTag { tag, ty: "FrameKind" }),
        }
    }
}

/// Appends one framed message (header + payload) to `out`.
///
/// Returns the total number of bytes appended — this is the *measured*
/// wire size the TCP backend reports into NetStats, as opposed to the
/// `size_of` estimates the in-proc backend records.
pub fn encode_frame_into(kind: FrameKind, payload: &[u8], out: &mut Vec<u8>) -> Result<usize, NetError> {
    if payload.len() > MAX_FRAME {
        return Err(NetError::FrameTooLarge { len: payload.len(), max: MAX_FRAME });
    }
    (payload.len() as u32).encode(out);
    out.push(kind.as_u8());
    out.extend_from_slice(payload);
    Ok(HEADER_LEN + payload.len())
}

/// Writes one framed message to `w` and flushes it.
///
/// Returns the total bytes written (header + payload).
pub fn write_frame<W: Write>(w: &mut W, kind: FrameKind, payload: &[u8]) -> Result<usize, NetError> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    let total = encode_frame_into(kind, payload, &mut buf)?;
    w.write_all(&buf).map_err(|e| NetError::from_io(&e, "frame write"))?;
    w.flush().map_err(|e| NetError::from_io(&e, "frame flush"))?;
    Ok(total)
}

/// Encodes a Hello/Shutdown control payload: just the sender's id.
pub fn control_payload(from: usize) -> Vec<u8> {
    (from as u32).to_wire()
}

/// Decodes a Hello/Shutdown control payload back to the sender's id.
pub fn decode_control_payload(payload: &[u8]) -> Result<usize, NetError> {
    let id = u32::from_wire(payload)?;
    Ok(id as usize)
}

/// Encodes a Rejoin payload: the dialer's machine id plus the first
/// round it will (re)send — everything at or above this round must be
/// replayed to it from the acceptor's outbound log.
pub fn rejoin_payload(from: usize, resume_round: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    (from as u32).encode(&mut out);
    resume_round.encode(&mut out);
    out
}

/// Decodes a Rejoin payload back to `(machine id, resume_round)`.
pub fn decode_rejoin_payload(payload: &[u8]) -> Result<(usize, u64), NetError> {
    let mut r = WireReader::new(payload);
    let id = u32::decode(&mut r)?;
    let round = u64::decode(&mut r)?;
    r.finish()?;
    Ok((id as usize, round))
}

/// One fully received frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawFrame {
    /// The frame's kind tag.
    pub kind: FrameKind,
    /// The payload bytes (everything after the 5-byte header).
    pub payload: Vec<u8>,
}

impl RawFrame {
    /// Total bytes this frame occupied on the wire.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

/// Incremental frame parser over a (possibly timeout-ticking) reader.
///
/// Call [`FrameReader::poll`] in a loop:
///
/// * `Ok(Some(frame))` — a complete frame arrived;
/// * `Ok(None)` — the read timed out (a *tick*: check your poison flag
///   and poll again; any partial bytes are retained);
/// * `Err(PeerClosed)` — EOF, whether mid-frame or between frames;
/// * `Err(_)` — a hard socket or protocol error.
#[derive(Debug)]
pub struct FrameReader {
    /// Header accumulation buffer.
    header: [u8; HEADER_LEN],
    /// Bytes of the header received so far.
    header_have: usize,
    /// Payload accumulation buffer (sized once the header is complete).
    payload: Vec<u8>,
    /// Bytes of the payload received so far.
    payload_have: usize,
    /// True once the header has been parsed and `payload` sized.
    in_payload: bool,
    /// Parsed kind tag (valid once `in_payload`).
    kind: FrameKind,
    /// Recycled payload buffers returned by the consumer once a frame
    /// has been routed (see [`FrameReader::supply_buffer`]). Capped at
    /// [`FRAME_POOL_CAP`].
    free: Vec<Vec<u8>>,
    /// Whether the payload of the frame currently being (or last)
    /// assembled was drawn from the `free` list rather than freshly
    /// allocated — the zero-copy steady-state signal.
    cur_pooled: bool,
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameReader {
    /// A reader with no partial state.
    pub fn new() -> Self {
        FrameReader {
            header: [0u8; HEADER_LEN],
            header_have: 0,
            payload: Vec::new(),
            payload_have: 0,
            in_payload: false,
            kind: FrameKind::Data,
            free: Vec::new(),
            cur_pooled: false,
        }
    }

    /// Returns a spent payload buffer to the reader's free list so the
    /// next frame can be assembled without a fresh heap allocation.
    ///
    /// The buffer is cleared but keeps its capacity; zero-capacity
    /// buffers and anything past [`FRAME_POOL_CAP`] are dropped rather
    /// than pooled.
    pub fn supply_buffer(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || self.free.len() >= FRAME_POOL_CAP {
            return;
        }
        buf.clear();
        self.free.push(buf);
    }

    /// Whether the most recently completed (or in-flight) frame's
    /// payload buffer came from the free list. After warmup, a healthy
    /// zero-copy consumer sees this `true` for every data frame —
    /// steady-state inbound decode then performs zero per-frame heap
    /// allocations.
    pub fn last_frame_pooled(&self) -> bool {
        self.cur_pooled
    }

    /// Buffers currently parked on the free list (diagnostics/tests).
    pub fn pooled_buffers(&self) -> usize {
        self.free.len()
    }

    /// Whether a frame is partially received (useful for diagnostics: an
    /// EOF with `mid_frame()` true is a torn connection, not a close).
    pub fn mid_frame(&self) -> bool {
        self.header_have > 0 || self.in_payload
    }

    /// Advances the parser with whatever bytes `r` can produce.
    pub fn poll<R: Read>(&mut self, r: &mut R) -> Result<Option<RawFrame>, NetError> {
        loop {
            if !self.in_payload {
                // Accumulate the 5-byte header.
                match r.read(&mut self.header[self.header_have..]) {
                    Ok(0) => return Err(NetError::PeerClosed),
                    Ok(n) => self.header_have += n,
                    Err(e) => match classify(&e) {
                        IoClass::Tick => return Ok(None),
                        IoClass::Retry => continue,
                        IoClass::Fail => return Err(NetError::from_io(&e, "frame header")),
                    },
                }
                if self.header_have < HEADER_LEN {
                    continue;
                }
                // Header complete: parse length + kind, size the payload.
                let mut hr = WireReader::new(&self.header);
                let len = u32::decode(&mut hr)? as usize;
                let kind = FrameKind::from_u8(hr.take_u8()?)?;
                if len > MAX_FRAME {
                    return Err(NetError::FrameTooLarge { len, max: MAX_FRAME });
                }
                self.kind = kind;
                // `poll` hands completed payloads off by `mem::take`, so
                // at this point `payload` is always the empty post-take
                // husk; draw a recycled buffer if the consumer returned
                // one, otherwise allocate fresh (and record which).
                if self.payload.capacity() == 0 {
                    if let Some(buf) = self.free.pop() {
                        self.payload = buf;
                        self.cur_pooled = true;
                    } else {
                        self.cur_pooled = false;
                    }
                }
                self.payload.clear();
                self.payload.resize(len, 0);
                self.payload_have = 0;
                self.in_payload = true;
            }
            if self.payload_have < self.payload.len() {
                match r.read(&mut self.payload[self.payload_have..]) {
                    Ok(0) => return Err(NetError::PeerClosed),
                    Ok(n) => self.payload_have += n,
                    Err(e) => match classify(&e) {
                        IoClass::Tick => return Ok(None),
                        IoClass::Retry => continue,
                        IoClass::Fail => return Err(NetError::from_io(&e, "frame payload")),
                    },
                }
                if self.payload_have < self.payload.len() {
                    continue;
                }
            }
            // Frame complete: hand it off and reset for the next one.
            let payload = std::mem::take(&mut self.payload);
            self.header_have = 0;
            self.payload_have = 0;
            self.in_payload = false;
            return Ok(Some(RawFrame { kind: self.kind, payload }));
        }
    }
}

/// How to react to an `io::Error` from a mesh socket read.
enum IoClass {
    /// Read timeout expired — poll again later (partial state kept).
    Tick,
    /// Interrupted syscall — retry immediately.
    Retry,
    /// Hard failure.
    Fail,
}

fn classify(e: &std::io::Error) -> IoClass {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => IoClass::Tick,
        ErrorKind::Interrupted => IoClass::Retry,
        _ => IoClass::Fail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_frame_into(kind, payload, &mut out).unwrap();
        out
    }

    #[test]
    fn header_layout() {
        let bytes = framed(FrameKind::Hello, &[0xAA, 0xBB]);
        assert_eq!(bytes, vec![2, 0, 0, 0, 1, 0xAA, 0xBB]);
    }

    #[test]
    fn single_frame_round_trip() {
        let bytes = framed(FrameKind::Data, b"hello mesh");
        let mut rd = FrameReader::new();
        let f = rd.poll(&mut Cursor::new(&bytes)).unwrap().unwrap();
        assert_eq!(f.kind, FrameKind::Data);
        assert_eq!(f.payload, b"hello mesh");
        assert_eq!(f.wire_len(), bytes.len());
        assert!(!rd.mid_frame());
    }

    #[test]
    fn back_to_back_frames() {
        let mut bytes = framed(FrameKind::Data, b"one");
        bytes.extend_from_slice(&framed(FrameKind::Shutdown, &control_payload(3)));
        let mut cur = Cursor::new(&bytes);
        let mut rd = FrameReader::new();
        let a = rd.poll(&mut cur).unwrap().unwrap();
        assert_eq!(a.payload, b"one");
        let b = rd.poll(&mut cur).unwrap().unwrap();
        assert_eq!(b.kind, FrameKind::Shutdown);
        assert_eq!(decode_control_payload(&b.payload).unwrap(), 3);
    }

    #[test]
    fn empty_payload_frame() {
        let bytes = framed(FrameKind::Data, &[]);
        let mut rd = FrameReader::new();
        let f = rd.poll(&mut Cursor::new(&bytes)).unwrap().unwrap();
        assert!(f.payload.is_empty());
    }

    /// A reader that delivers at most `chunk` bytes per read and injects a
    /// timeout tick between every chunk — the worst torn-read schedule.
    struct TornReader<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
        tick_next: bool,
    }

    impl<'a> Read for TornReader<'a> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.tick_next {
                self.tick_next = false;
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"));
            }
            self.tick_next = true;
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            if n == 0 {
                return Ok(0); // EOF
            }
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn torn_reads_reassemble() {
        let mut bytes = framed(FrameKind::Data, b"payload one");
        bytes.extend_from_slice(&framed(FrameKind::Data, b"payload two, longer"));
        for chunk in 1..=3 {
            let mut tr = TornReader { data: &bytes, pos: 0, chunk, tick_next: false };
            let mut rd = FrameReader::new();
            let mut got = Vec::new();
            while got.len() < 2 {
                match rd.poll(&mut tr) {
                    Ok(Some(f)) => got.push(f),
                    Ok(None) => continue, // timeout tick mid-frame
                    Err(e) => panic!("chunk={chunk}: {e}"),
                }
            }
            assert_eq!(got[0].payload, b"payload one");
            assert_eq!(got[1].payload, b"payload two, longer");
        }
    }

    #[test]
    fn eof_mid_frame_is_peer_closed() {
        let bytes = framed(FrameKind::Data, b"truncated!");
        let cut = &bytes[..bytes.len() - 3];
        let mut rd = FrameReader::new();
        let mut cur = Cursor::new(cut);
        loop {
            match rd.poll(&mut cur) {
                Ok(Some(_)) => panic!("frame should not complete"),
                Ok(None) => continue,
                Err(e) => {
                    assert_eq!(e, NetError::PeerClosed);
                    assert!(rd.mid_frame());
                    break;
                }
            }
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bytes = Vec::new();
        ((MAX_FRAME as u32) + 1).encode(&mut bytes);
        bytes.push(FrameKind::Data.as_u8());
        let err = FrameReader::new().poll(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, NetError::FrameTooLarge { .. }));
    }

    #[test]
    fn unknown_kind_rejected() {
        let bytes = vec![0, 0, 0, 0, 9];
        let err = FrameReader::new().poll(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, NetError::BadTag { tag: 9, .. }));
    }

    #[test]
    fn rejoin_payload_round_trips() {
        let bytes = rejoin_payload(3, 41);
        assert_eq!(decode_rejoin_payload(&bytes).unwrap(), (3, 41));
        // Truncations are typed errors, not panics.
        for cut in 0..bytes.len() {
            assert!(decode_rejoin_payload(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn write_frame_reports_wire_len() {
        let mut sink = Vec::new();
        let n = write_frame(&mut sink, FrameKind::Data, b"abcd").unwrap();
        assert_eq!(n, HEADER_LEN + 4);
        assert_eq!(sink.len(), n);
    }

    #[test]
    fn recycled_buffers_are_reused_without_allocation() {
        let mut bytes = Vec::new();
        for i in 0..4u8 {
            bytes.extend_from_slice(&framed(FrameKind::Data, &[i; 16]));
        }
        let mut cur = Cursor::new(&bytes);
        let mut rd = FrameReader::new();

        // First frame: cold, allocates.
        let f0 = rd.poll(&mut cur).unwrap().unwrap();
        assert!(!rd.last_frame_pooled());
        rd.supply_buffer(f0.payload);
        assert_eq!(rd.pooled_buffers(), 1);

        // Steady state: every subsequent frame draws from the pool.
        for i in 1..4u8 {
            let f = rd.poll(&mut cur).unwrap().unwrap();
            assert_eq!(f.payload, vec![i; 16]);
            assert!(rd.last_frame_pooled(), "frame {i} should reuse the recycled buffer");
            rd.supply_buffer(f.payload);
        }
    }

    #[test]
    fn pool_drops_empty_buffers_and_caps_depth() {
        let mut rd = FrameReader::new();
        rd.supply_buffer(Vec::new()); // zero capacity: not pooled
        assert_eq!(rd.pooled_buffers(), 0);
        for _ in 0..(FRAME_POOL_CAP + 3) {
            rd.supply_buffer(Vec::with_capacity(8));
        }
        assert_eq!(rd.pooled_buffers(), FRAME_POOL_CAP);
    }

    #[test]
    fn pooled_buffer_contents_do_not_leak_into_next_frame() {
        let mut rd = FrameReader::new();
        // A dirty recycled buffer larger than the next frame's payload.
        rd.supply_buffer(vec![0xFF; 64]);
        let bytes = framed(FrameKind::Data, b"clean");
        let f = rd.poll(&mut Cursor::new(&bytes)).unwrap().unwrap();
        assert!(rd.last_frame_pooled());
        assert_eq!(f.payload, b"clean");
    }
}
