//! TCP mesh establishment: retrying connect, Hello handshake, and the
//! deterministic dial/accept split.
//!
//! A mesh of `n` machines needs one socket per unordered peer pair. To
//! avoid the classic simultaneous-connect glare, the split is fixed by
//! rank: machine `i` **dials** every peer `j < i` and **accepts** from
//! every peer `j > i`. Each dialed connection opens with a `Hello` frame
//! carrying the dialer's machine id, so the acceptor learns who is on
//! the other end without trusting ephemeral source ports.
//!
//! Workers start in arbitrary order (they are separate OS processes), so
//! dialing retries with exponential backoff until the peer's listener is
//! up or the attempt budget runs out. Accepting polls a non-blocking
//! listener under a deadline so a worker that never comes up surfaces as
//! a typed [`NetError::Timeout`] instead of a hang.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::error::NetError;
use crate::frame::{control_payload, decode_control_payload, write_frame, FrameKind, FrameReader, RawFrame};

/// Tunables for mesh sockets. The defaults suit loopback workers that
/// start within a few seconds of each other.
#[derive(Clone, Debug)]
pub struct TcpOptions {
    /// Max dial attempts before giving up on a peer.
    pub connect_attempts: u32,
    /// First retry delay; doubles each attempt.
    pub backoff_base: Duration,
    /// Ceiling on the per-attempt delay.
    pub backoff_max: Duration,
    /// Socket read timeout: the reader-thread tick interval. Short, so a
    /// poisoned mesh is noticed quickly; partial frames survive ticks.
    pub read_timeout: Duration,
    /// Socket write timeout: a peer that stops draining for this long is
    /// treated as dead.
    pub write_timeout: Duration,
    /// Overall deadline for mesh establishment (accepting + Hello).
    pub handshake_timeout: Duration,
    /// Fault-tolerance mode: how long a torn peer connection may sit in
    /// "awaiting rejoin" before the mesh is poisoned. `None` (the
    /// default) keeps the PR 4 fail-fast behaviour: any torn connection
    /// poisons the mesh immediately.
    pub rejoin_window: Option<Duration>,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            connect_attempts: 60,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(250),
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(20),
            rejoin_window: None,
        }
    }
}

/// Dials `addr`, retrying with exponential backoff.
pub fn connect_with_backoff(addr: &SocketAddr, opts: &TcpOptions) -> Result<TcpStream, NetError> {
    let mut delay = opts.backoff_base;
    let mut last = String::new();
    let attempts = opts.connect_attempts.max(1);
    for attempt in 0..attempts {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(delay);
            delay = (delay * 2).min(opts.backoff_max);
        }
    }
    Err(NetError::ConnectFailed { addr: addr.to_string(), attempts, last })
}

/// Applies the per-socket options every mesh stream runs with. Public so
/// the cluster layer's rejoin acceptor can configure accepted sockets the
/// same way establishment does.
pub fn configure(stream: &TcpStream, opts: &TcpOptions) -> Result<(), NetError> {
    stream.set_nodelay(true).map_err(|e| NetError::from_io(&e, "set_nodelay"))?;
    stream
        .set_read_timeout(Some(opts.read_timeout))
        .map_err(|e| NetError::from_io(&e, "set_read_timeout"))?;
    stream
        .set_write_timeout(Some(opts.write_timeout))
        .map_err(|e| NetError::from_io(&e, "set_write_timeout"))?;
    Ok(())
}

/// Reads one complete frame from `stream`, tolerating timeout ticks,
/// until `deadline` passes.
pub fn read_frame_deadline(stream: &mut TcpStream, deadline: Instant) -> Result<RawFrame, NetError> {
    let mut reader = FrameReader::new();
    loop {
        match reader.poll(stream) {
            Ok(Some(frame)) => return Ok(frame),
            Ok(None) => {
                if Instant::now() >= deadline {
                    return Err(NetError::Timeout { what: "handshake frame" });
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// One established mesh connection.
#[derive(Debug)]
pub struct PeerLink {
    /// The machine id on the far end.
    pub peer: usize,
    /// The connected, configured stream.
    pub stream: TcpStream,
}

/// Establishes the full mesh for machine `me` of `addrs.len()` machines.
///
/// `listener` must already be bound to `addrs[me]` (binding early — before
/// any dialing — is what makes the retry loop converge). Returns one
/// [`PeerLink`] per peer, sorted by peer id.
pub fn connect_mesh(
    me: usize,
    addrs: &[SocketAddr],
    listener: &TcpListener,
    opts: &TcpOptions,
) -> Result<Vec<PeerLink>, NetError> {
    let n = addrs.len();
    let deadline = Instant::now() + opts.handshake_timeout;
    let mut links: Vec<PeerLink> = Vec::with_capacity(n.saturating_sub(1));

    // Dial every lower-ranked peer, identifying ourselves with Hello.
    for (j, addr) in addrs.iter().enumerate().take(me) {
        let mut stream = connect_with_backoff(addr, opts)?;
        configure(&stream, opts)?;
        write_frame(&mut stream, FrameKind::Hello, &control_payload(me))?;
        links.push(PeerLink { peer: j, stream });
    }

    // Accept every higher-ranked peer; they tell us who they are.
    let expected_accepts = n.saturating_sub(me + 1);
    listener
        .set_nonblocking(true)
        .map_err(|e| NetError::from_io(&e, "listener set_nonblocking"))?;
    let mut seen = vec![false; n];
    while links.len() < n.saturating_sub(1) {
        if Instant::now() >= deadline {
            return Err(NetError::Timeout { what: "mesh accept" });
        }
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::from_io(&e, "mesh accept")),
        };
        stream
            .set_nonblocking(false)
            .map_err(|e| NetError::from_io(&e, "stream set_blocking"))?;
        configure(&stream, opts)?;
        let mut stream = stream;
        let hello = read_frame_deadline(&mut stream, deadline)?;
        if hello.kind != FrameKind::Hello {
            return Err(NetError::Handshake {
                detail: format!("expected Hello, got {:?}", hello.kind),
            });
        }
        let peer = decode_control_payload(&hello.payload)?;
        if peer <= me || peer >= n {
            return Err(NetError::Handshake {
                detail: format!("machine {me} accepted Hello from out-of-range peer {peer} (n={n})"),
            });
        }
        if seen[peer] {
            return Err(NetError::Handshake {
                detail: format!("machine {me} accepted a duplicate Hello from peer {peer}"),
            });
        }
        seen[peer] = true;
        links.push(PeerLink { peer, stream });
    }
    debug_assert_eq!(
        links.iter().filter(|l| l.peer > me).count(),
        expected_accepts,
    );

    links.sort_by_key(|l| l.peer);
    Ok(links)
}

/// Drains stray bytes then closes; best-effort counterpart of the
/// Shutdown frame for tests and teardown paths.
pub fn send_shutdown(stream: &mut TcpStream, me: usize) -> Result<usize, NetError> {
    write_frame(stream, FrameKind::Shutdown, &control_payload(me))
}

/// Dials `addr` and opens with a Rejoin frame instead of a Hello: a
/// restarted worker re-entering an established mesh. Every rejoin leg is
/// dialed by the restarted side (no rank-based dial/accept split and
/// therefore no glare), so this works toward peers of any rank.
pub fn dial_rejoin(
    addr: &SocketAddr,
    me: usize,
    resume_round: u64,
    opts: &TcpOptions,
) -> Result<TcpStream, NetError> {
    let mut stream = connect_with_backoff(addr, opts)?;
    configure(&stream, opts)?;
    write_frame(
        &mut stream,
        FrameKind::Rejoin,
        &crate::frame::rejoin_payload(me, resume_round),
    )?;
    Ok(stream)
}

/// Reads frames until Shutdown (clean) or EOF/error, with a deadline.
/// Returns `Ok(peer_id)` on a clean shutdown.
pub fn await_shutdown(stream: &mut TcpStream, timeout: Duration) -> Result<usize, NetError> {
    let deadline = Instant::now() + timeout;
    loop {
        let frame = read_frame_deadline(stream, deadline)?;
        match frame.kind {
            FrameKind::Shutdown => return decode_control_payload(&frame.payload),
            // Late data/migrate frames during teardown are dropped, not
            // errors.
            FrameKind::Data | FrameKind::Migrate => continue,
            FrameKind::Hello => {
                return Err(NetError::Handshake { detail: "Hello after establishment".into() })
            }
            FrameKind::Rejoin => {
                return Err(NetError::Handshake { detail: "Rejoin during teardown".into() })
            }
        }
    }
}

/// Reads and discards everything until EOF or timeout; lets the peer's
/// close complete without RST-ing unread data.
pub fn drain_until_eof(stream: &mut TcpStream, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    let mut sink = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback_listener() -> (TcpListener, SocketAddr) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        (l, addr)
    }

    #[test]
    fn connect_refused_reports_attempts() {
        // Bind-then-drop: the port is (very likely) closed afterward.
        let (l, addr) = loopback_listener();
        drop(l);
        let opts = TcpOptions {
            connect_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(2),
            ..TcpOptions::default()
        };
        match connect_with_backoff(&addr, &opts) {
            Err(NetError::ConnectFailed { attempts: 3, .. }) => {}
            other => panic!("expected ConnectFailed after 3 attempts, got {other:?}"),
        }
    }

    #[test]
    fn connect_succeeds_after_listener_appears() {
        let (l, addr) = loopback_listener();
        let opts = TcpOptions::default();
        let dialer = std::thread::spawn(move || connect_with_backoff(&addr, &opts));
        let (_accepted, _) = l.accept().unwrap();
        assert!(dialer.join().unwrap().is_ok());
    }

    #[test]
    fn three_machine_mesh_establishes() {
        let n = 3;
        let mut listeners = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..n {
            let (l, a) = loopback_listener();
            listeners.push(l);
            addrs.push(a);
        }
        let addrs2 = addrs.clone();
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(me, listener)| {
                let addrs = addrs2.clone();
                std::thread::spawn(move || {
                    connect_mesh(me, &addrs, &listener, &TcpOptions::default())
                })
            })
            .collect();
        for (me, h) in handles.into_iter().enumerate() {
            let links = h.join().unwrap().unwrap();
            let peers: Vec<usize> = links.iter().map(|l| l.peer).collect();
            let expected: Vec<usize> = (0..n).filter(|&j| j != me).collect();
            assert_eq!(peers, expected, "machine {me} peer set");
        }
    }

    #[test]
    fn shutdown_handshake_round_trips() {
        let (l, addr) = loopback_listener();
        let opts = TcpOptions::default();
        let t = std::thread::spawn(move || {
            let mut s = connect_with_backoff(&addr, &opts).unwrap();
            configure(&s, &opts).unwrap();
            send_shutdown(&mut s, 7).unwrap();
            drain_until_eof(&mut s, Duration::from_secs(1));
        });
        let (mut s, _) = l.accept().unwrap();
        configure(&s, &TcpOptions::default()).unwrap();
        let peer = await_shutdown(&mut s, Duration::from_secs(5)).unwrap();
        assert_eq!(peer, 7);
        drop(s);
        t.join().unwrap();
    }

    #[test]
    fn unclean_death_is_peer_closed() {
        let (l, addr) = loopback_listener();
        let opts = TcpOptions::default();
        let t = std::thread::spawn(move || {
            // Connect and vanish without a Shutdown frame.
            let s = connect_with_backoff(&addr, &opts).unwrap();
            drop(s);
        });
        let (mut s, _) = l.accept().unwrap();
        configure(&s, &TcpOptions::default()).unwrap();
        let err = await_shutdown(&mut s, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, NetError::PeerClosed);
        t.join().unwrap();
    }
}
