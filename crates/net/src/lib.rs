//! `lazygraph-net`: the wire layer under the mesh.
//!
//! Everything a value needs to leave its process: a deterministic
//! little-endian codec ([`Wire`]), length-prefixed framing robust to
//! torn reads ([`FrameReader`]), and TCP mesh establishment with retry,
//! backoff, and a clean shutdown handshake ([`connect_mesh`]).
//!
//! This crate is a leaf — no dependencies, `std::net` only — so the
//! cluster layer can build its transport on top without cycles. It knows
//! nothing about engines, batches, or graph types; the cluster layer
//! owns the mapping between `Batch<T>` and Data-frame payloads, and maps
//! [`NetError`] onto `CommError` at its boundary.
//!
//! See DESIGN.md §10 for the frame format and the transport-selection
//! matrix.

#![forbid(unsafe_code)]

pub mod error;
pub mod frame;
pub mod tcp;
pub mod wire;

pub use error::NetError;
pub use frame::{
    control_payload, decode_control_payload, decode_rejoin_payload, encode_frame_into,
    rejoin_payload, write_frame, FrameKind, FrameReader, RawFrame, HEADER_LEN, MAX_FRAME,
};
pub use tcp::{
    await_shutdown, connect_mesh, connect_with_backoff, dial_rejoin, drain_until_eof,
    read_frame_deadline, send_shutdown, PeerLink, TcpOptions,
};
pub use wire::{Wire, WireReader};
