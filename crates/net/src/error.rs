//! Typed errors for the wire codec and the TCP transport.
//!
//! Everything here is either a *codec* failure (truncated or corrupt
//! bytes — a protocol bug or a torn connection) or a *transport* failure
//! (socket-level). The cluster layer maps both onto
//! `lazygraph_cluster::CommError` so engines keep a single error surface.

use std::fmt;

/// A wire/transport-layer failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The decoder ran off the end of the buffer.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// A tag byte held a value the decoder does not know.
    BadTag {
        /// The offending byte.
        tag: u8,
        /// The type being decoded.
        ty: &'static str,
    },
    /// A decoded length prefix exceeds the sanity cap.
    FrameTooLarge {
        /// Declared length.
        len: usize,
        /// The cap it violated.
        max: usize,
    },
    /// A frame decoded cleanly but left trailing bytes behind.
    TrailingBytes {
        /// How many bytes remained.
        extra: usize,
    },
    /// The peer closed the connection (EOF) outside a clean shutdown.
    PeerClosed,
    /// A socket read/write timed out past the configured deadline.
    Timeout {
        /// What was being waited for.
        what: &'static str,
    },
    /// Connecting to a peer failed even after every retry.
    ConnectFailed {
        /// Peer address that refused us.
        addr: String,
        /// Attempts made.
        attempts: u32,
        /// Last OS error text.
        last: String,
    },
    /// Any other socket-level failure.
    Io {
        /// `std::io::ErrorKind` as text.
        kind: &'static str,
        /// OS error detail.
        detail: String,
    },
    /// A handshake frame was not what the mesh protocol expects.
    Handshake {
        /// What went wrong.
        detail: String,
    },
}

impl NetError {
    /// Wraps an `std::io::Error`, classifying timeouts and EOFs.
    pub fn from_io(e: &std::io::Error, what: &'static str) -> NetError {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => NetError::Timeout { what },
            ErrorKind::UnexpectedEof => NetError::PeerClosed,
            kind => NetError::Io {
                kind: io_kind_name(kind),
                detail: e.to_string(),
            },
        }
    }

    /// Whether this error is a read/write deadline expiry (retryable by a
    /// polling loop) rather than a hard failure.
    pub fn is_timeout(&self) -> bool {
        matches!(self, NetError::Timeout { .. })
    }
}

/// Stable text for an `io::ErrorKind` (the kind enum is `non_exhaustive`).
fn io_kind_name(kind: std::io::ErrorKind) -> &'static str {
    use std::io::ErrorKind::*;
    match kind {
        NotFound => "not-found",
        PermissionDenied => "permission-denied",
        ConnectionRefused => "connection-refused",
        ConnectionReset => "connection-reset",
        ConnectionAborted => "connection-aborted",
        NotConnected => "not-connected",
        AddrInUse => "addr-in-use",
        AddrNotAvailable => "addr-not-available",
        BrokenPipe => "broken-pipe",
        AlreadyExists => "already-exists",
        InvalidInput => "invalid-input",
        InvalidData => "invalid-data",
        WriteZero => "write-zero",
        Interrupted => "interrupted",
        UnexpectedEof => "unexpected-eof",
        _ => "other",
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated { needed, have } => {
                write!(f, "wire decode truncated: needed {needed} bytes, have {have}")
            }
            NetError::BadTag { tag, ty } => {
                write!(f, "wire decode: tag byte {tag:#04x} is not a valid {ty}")
            }
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            NetError::TrailingBytes { extra } => {
                write!(f, "frame decoded with {extra} trailing bytes")
            }
            NetError::PeerClosed => write!(f, "peer closed the connection without a shutdown frame"),
            NetError::Timeout { what } => write!(f, "timed out waiting for {what}"),
            NetError::ConnectFailed { addr, attempts, last } => {
                write!(f, "connect to {addr} failed after {attempts} attempts: {last}")
            }
            NetError::Io { kind, detail } => write!(f, "socket error ({kind}): {detail}"),
            NetError::Handshake { detail } => write!(f, "mesh handshake failed: {detail}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_detail() {
        let e = NetError::Truncated { needed: 8, have: 3 };
        assert!(e.to_string().contains("needed 8"));
        let e = NetError::ConnectFailed {
            addr: "127.0.0.1:9".into(),
            attempts: 5,
            last: "refused".into(),
        };
        assert!(e.to_string().contains("5 attempts"));
    }

    #[test]
    fn io_classification() {
        let to = std::io::Error::new(std::io::ErrorKind::TimedOut, "t");
        assert!(NetError::from_io(&to, "frame").is_timeout());
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "e");
        assert_eq!(NetError::from_io(&eof, "frame"), NetError::PeerClosed);
        let other = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "b");
        assert!(matches!(NetError::from_io(&other, "frame"), NetError::Io { kind: "broken-pipe", .. }));
    }
}
