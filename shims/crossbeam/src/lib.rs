//! Offline stand-in for `crossbeam` — the channel subset this workspace
//! uses: unbounded MPMC channels with cloneable senders *and* receivers.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half; cloneable (MPMC — clones share one queue).
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// The message could not be sent because all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like upstream: no `T: Debug` bound, payload elided.
            f.write_str("SendError(..)")
        }
    }

    /// All senders disconnected and the queue is drained.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Outcome of a failed non-blocking receive.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Outcome of a failed bounded-wait receive.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .0
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _res) = self
                    .0
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_one_sender() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_to_no_receiver_fails() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(5u8).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(1)), Ok(5));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(99u32).unwrap();
            assert_eq!(h.join().unwrap(), Ok(99));
        }
    }
}
