//! Offline stand-in for `proptest` — the subset this workspace uses:
//! the `proptest!` macro, range/tuple/`Just`/`any`/`collection::vec`
//! strategies with `prop_flat_map`/`prop_map`, and `prop_assert*`.
//!
//! Each case's inputs come from a generator seeded deterministically by
//! (test name, case index), so every run — and every failure — reproduces
//! exactly. There is no shrinking; a failure reports the case index and
//! seed instead.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The per-test case generator. Splitmix64: cheap, seedable, uniform.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a new strategy from each generated value (dependent data).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Maps each generated value through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + rng.next_f64() as $t * (self.end - self.start);
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-lo/exclusive-hi length bound for [`vec`]. The `From`
    /// impls are what let an untyped `1..300` infer as `usize`, exactly
    /// like upstream proptest's `SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi - self.len.lo) as u64;
            let n = self.len.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[inline]
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` for each deterministic (test, index) seed, reporting the
/// failing case before propagating its panic.
pub fn run_prop_test(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng),
) {
    for i in 0..config.cases {
        let seed = fnv1a(name) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            eprintln!(
                "proptest {name}: case {}/{} failed (seed {seed:#x})",
                i + 1,
                config.cases
            );
            resume_unwind(payload);
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_prop_test(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)*
                $body
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = (0u32..100, crate::collection::vec(0usize..10, 1usize..5));
        let mut a = TestRng::new(99);
        let mut b = TestRng::new(99);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2usize..10).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0..n as u32, 1usize..4))
        });
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let (n, xs) = strat.generate(&mut rng);
            assert!((2..10).contains(&n));
            assert!(xs.iter().all(|&x| (x as usize) < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_parses_full_grammar(
            x in 0u32..50,
            flag in any::<bool>(),
            (lo, hi) in (0i64..5, 10i64..20),
        ) {
            prop_assert!(x < 50);
            prop_assert!(lo < hi);
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in crate::collection::vec(any::<u8>(), 0usize..8)) {
            prop_assert!(v.len() < 8);
        }
    }
}
