//! Offline stand-in for `rand` 0.9 — the subset this workspace uses.
//!
//! Deterministic by construction: `StdRng` is xoshiro256** seeded through
//! splitmix64. The stream differs from upstream rand's ChaCha12 `StdRng`,
//! which is fine — nothing in the workspace depends on upstream's exact
//! stream, only on seeded reproducibility.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator trait: raw words plus the two sampling
/// entry points the workspace calls, `random` and `random_range`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of `T` from its standard distribution
    /// (floats uniform in `[0, 1)`, integers/bool uniform over the type).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range. Panics on empty ranges.
    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's complement makes this span correct for signed types
                // too; modulo bias is irrelevant for simulation workloads.
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                let r = rng.next_u64();
                let off = if span == u64::MAX { r } else { r % (span + 1) };
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
range_float!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via splitmix64 — deterministic and fast.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let w = rng.random_range(1.0f32..9.0);
            assert!((1.0..9.0).contains(&w));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_width_samples_hit_both_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut high = 0;
        for _ in 0..256 {
            if rng.random::<u64>() > u64::MAX / 2 {
                high += 1;
            }
        }
        assert!(high > 64 && high < 192, "suspiciously biased: {high}/256");
    }
}
