//! Offline stand-in for `criterion` — the subset this workspace's benches
//! use. Measures the best-of-N-samples mean iteration time with a short
//! calibration pass and prints one line per benchmark; no HTML reports,
//! no statistical regression machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a group's element/byte counts convert times to rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(name, sample_size, None, f);
        self
    }
}

/// A named group of related benchmarks sharing sample/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        result: None,
    };
    f(&mut bencher);
    let Some(mean) = bencher.result else {
        println!("{label:<50} (no measurement)");
        return;
    };
    let mut line = format!("{label:<50} time: [{}]", format_duration(mean));
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / mean.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: [{:.3} Melem/s]", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  thrpt: [{:.3} MiB/s]", per_sec(n) / (1 << 20) as f64));
            }
        }
    }
    println!("{line}");
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping the best (least noisy) sample's mean
    /// per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibration: aim each sample at ~20ms of work.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(20).as_nanos() / once.as_nanos())
            .clamp(1, 10_000) as u32;
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let s = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            best = best.min(s.elapsed() / iters);
        }
        self.result = Some(best);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(BenchmarkId::new("sum", 1000), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(self_test, sample_bench);

    #[test]
    fn harness_runs() {
        self_test();
    }
}
