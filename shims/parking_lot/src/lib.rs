//! Offline stand-in for `parking_lot` — the subset this workspace uses.
//!
//! Wraps the std primitives and erases lock poisoning (parking_lot's
//! locks don't poison): a panic while holding the lock simply releases it.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` returns the guard directly (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        use std::sync::TryLockError;
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock with direct (non-poisoning) guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
