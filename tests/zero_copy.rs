//! Zero-copy inbound path laws (DESIGN.md §14): the cursor decode
//! (`decode_batch_raw` + in-place item walk) must be *byte-equal* to the
//! materializing oracle (`decode_batch`) for every payload — including
//! NaN bit patterns, empty batches, and frames reassembled from torn
//! reads into dirty recycled buffers — and the pipelined exchange with
//! adaptive part sizing must stay bitwise-identical to the serialized
//! path (that half lives in `tests/determinism.rs`).

use std::io::Read;

use proptest::prelude::*;

use lazygraph_cluster::{decode_batch, decode_batch_raw, encode_batch, Batch};
use lazygraph_net::{encode_frame_into, FrameKind, FrameReader, Wire, WireReader, HEADER_LEN};

type Item = (u32, f32);

/// Builds a wire batch from `(gid, delta-bits)` pairs — going through
/// bits keeps NaN payloads intact, which `f32` proptest strategies and
/// float equality would silently collapse.
fn batch_from_bits(from: usize, round: u64, sent_at: f64, last: bool, bits: &[(u32, u32)]) -> Batch<Item> {
    Batch {
        from,
        sent_at,
        round,
        last,
        kind: FrameKind::Data,
        items: bits.iter().map(|&(g, b)| (g, f32::from_bits(b))).collect(),
        raw: None,
    }
}

/// Bit-faithful item fingerprint: floats compared as raw bits.
fn bits_of(items: &[Item]) -> Vec<(u32, u32)> {
    items.iter().map(|&(g, d)| (g, d.to_bits())).collect()
}

/// A reader that serves a byte stream in caller-chosen chunk sizes —
/// the torn-read simulator. Chunk boundaries land anywhere: inside the
/// 5-byte frame header, inside the item region, between frames.
struct Torn<'a> {
    data: &'a [u8],
    cuts: &'a [usize],
    pos: usize,
    cut: usize,
}

impl Read for Torn<'_> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let rest = &self.data[self.pos..];
        if rest.is_empty() {
            return Ok(0); // EOF — FrameReader reports PeerClosed.
        }
        let step = self
            .cuts
            .get(self.cut)
            .map(|&c| c.clamp(1, rest.len()))
            .unwrap_or(rest.len())
            .min(out.len());
        self.cut += 1;
        out[..step].copy_from_slice(&rest[..step]);
        self.pos += step;
        Ok(step)
    }
}

/// Decodes a raw-cursor batch the way `route_inbound` does: walk the
/// encoded item region item-by-item, never materializing a `Vec`.
fn cursor_walk(b: &mut Batch<Item>) -> Result<Vec<Item>, lazygraph_net::NetError> {
    let raw = b.raw.as_mut().expect("cursor walk needs a raw batch");
    let mut r = WireReader::new(&raw.bytes[raw.offset..]);
    let mut out = Vec::new();
    for _ in 0..raw.count {
        out.push(Item::decode(&mut r)?);
    }
    raw.count = 0;
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Core byte-equality law: for any batch — any gids, any delta *bit
    /// patterns* (NaNs, infinities, negative zero), any header values —
    /// the cursor walk, `make_items`, and the materializing oracle all
    /// decode the exact same bits from the exact same payload.
    #[test]
    fn cursor_decode_matches_materializing_decode(
        from in 0usize..64,
        round in any::<u64>(),
        sent_at_bits in any::<u64>(),
        last in any::<bool>(),
        bits in proptest::collection::vec((any::<u32>(), any::<u32>()), 0usize..64),
    ) {
        let sent = batch_from_bits(from, round, f64::from_bits(sent_at_bits), last, &bits);
        let payload = encode_batch(&sent);

        let oracle = decode_batch::<Item>(&payload).expect("oracle decode");
        let mut raw = decode_batch_raw::<Item>(payload.clone()).expect("raw decode");
        prop_assert_eq!(raw.from, oracle.from);
        prop_assert_eq!(raw.round, oracle.round);
        prop_assert_eq!(raw.sent_at.to_bits(), oracle.sent_at.to_bits());
        prop_assert_eq!(raw.last, oracle.last);
        prop_assert_eq!(raw.item_count(), oracle.items.len());

        // Cursor walk (the hot path) sees the same bits as the oracle...
        let walked = cursor_walk(&mut raw).expect("cursor walk");
        prop_assert_eq!(bits_of(&walked), bits_of(&oracle.items));
        prop_assert_eq!(raw.item_count(), 0, "walk must drain the cursor");

        // ...and so does `make_items` (the escape hatch), from a fresh raw.
        let mut again = decode_batch_raw::<Item>(payload).expect("raw decode");
        again.make_items().expect("materialize");
        prop_assert_eq!(bits_of(&again.items), bits_of(&oracle.items));
        again.make_items().expect("idempotent");
        prop_assert_eq!(again.item_count(), oracle.items.len());
    }

    /// Frame reassembly is cut-invariant: however the TCP stream tears —
    /// mid-header, mid-item, one byte at a time — the reassembled payload
    /// is byte-identical, even when assembled into a *dirty recycled*
    /// buffer from a previous, larger frame.
    #[test]
    fn torn_reads_and_dirty_buffers_reassemble_byte_identical(
        bits in proptest::collection::vec((any::<u32>(), any::<u32>()), 0usize..32),
        cuts in proptest::collection::vec(1usize..48, 0usize..24),
        dirt in proptest::collection::vec(any::<u8>(), 1usize..512),
    ) {
        let sent = batch_from_bits(3, 7, 0.5, true, &bits);
        let payload = encode_batch(&sent);
        let mut stream = Vec::new();
        encode_frame_into(FrameKind::Data, &payload, &mut stream).expect("frame");

        let mut reader = FrameReader::new();
        // Seed the pool with a dirty buffer: junk contents, arbitrary
        // capacity. A correct reader sizes to the header's length field
        // and overwrites exactly that many bytes.
        reader.supply_buffer(dirt);

        let mut torn = Torn { data: &stream, cuts: &cuts, pos: 0, cut: 0 };
        let frame = loop {
            match reader.poll(&mut torn).unwrap_or_else(|e| panic!("poll: {e}")) {
                Some(f) => break f,
                None => continue,
            }
        };
        prop_assert_eq!(frame.kind, FrameKind::Data);
        prop_assert_eq!(frame.wire_len(), HEADER_LEN + payload.len());
        prop_assert_eq!(&frame.payload, &payload, "reassembly must be cut-invariant");
        prop_assert!(reader.last_frame_pooled(), "seeded buffer must be reused");

        // And the zero-copy decode of the reassembled bytes still matches
        // the oracle bit-for-bit.
        let mut raw = decode_batch_raw::<Item>(frame.payload).expect("raw decode");
        let walked = cursor_walk(&mut raw).expect("cursor walk");
        prop_assert_eq!(bits_of(&walked), bits_of(&sent.items));
    }

    /// Back-to-back frames through one reader, recycling each payload
    /// buffer into the next frame's assembly: every frame's decode must
    /// match its own oracle — no bleed-through from the recycled bytes.
    #[test]
    fn recycled_buffers_never_bleed_between_frames(
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u32>(), any::<u32>()), 0usize..16),
            1usize..6,
        ),
        cuts in proptest::collection::vec(1usize..32, 0usize..32),
    ) {
        let mut stream = Vec::new();
        let mut payloads = Vec::new();
        for (i, bits) in batches.iter().enumerate() {
            let b = batch_from_bits(i, i as u64, i as f64, i + 1 == batches.len(), bits);
            let payload = encode_batch(&b);
            encode_frame_into(FrameKind::Data, &payload, &mut stream).expect("frame");
            payloads.push(payload);
        }

        let mut reader = FrameReader::new();
        let mut torn = Torn { data: &stream, cuts: &cuts, pos: 0, cut: 0 };
        for (i, want) in payloads.iter().enumerate() {
            let frame = loop {
                match reader
                    .poll(&mut torn)
                    .unwrap_or_else(|e| panic!("poll frame {i}: {e}"))
                {
                    Some(f) => break f,
                    None => continue,
                }
            };
            prop_assert_eq!(&frame.payload, want, "frame {} reassembly", i);
            let mut raw = decode_batch_raw::<Item>(frame.payload).expect("raw decode");
            let walked = cursor_walk(&mut raw).expect("cursor walk");
            prop_assert_eq!(bits_of(&walked), bits_of(&batches[i].iter()
                .map(|&(g, b)| (g, f32::from_bits(b))).collect::<Vec<_>>()));
            // Return the spent buffer — the next frame assembles into it.
            if let Some(r) = raw.raw.take() {
                reader.supply_buffer(r.bytes);
            }
        }
    }

    /// A torn *tail* — the item region cut short relative to the header's
    /// item count — is a typed error at the cursor decode, exactly where
    /// the materializing oracle fails too. Neither path panics, neither
    /// yields items past the tear.
    #[test]
    fn truncated_item_region_fails_both_paths_identically(
        bits in proptest::collection::vec((any::<u32>(), any::<u32>()), 1usize..32),
        cut_frac in 0.0f64..1.0,
    ) {
        let sent = batch_from_bits(0, 1, 0.0, true, &bits);
        let payload = encode_batch(&sent);
        // Cut strictly inside the item region: keep the header + count
        // intact so `decode_batch_raw` succeeds and the damage surfaces
        // at the cursor, as a short socket write would.
        let item_start = payload.len() - bits.len() * 8;
        let cut = item_start + ((payload.len() - 1 - item_start) as f64 * cut_frac) as usize;
        let torn_payload = payload[..cut].to_vec();

        let oracle_err = decode_batch::<Item>(&torn_payload).is_err();
        let mut raw = decode_batch_raw::<Item>(torn_payload).expect("header still whole");
        let cursor_err = cursor_walk(&mut raw).is_err();
        prop_assert!(oracle_err, "oracle must reject a torn item region");
        prop_assert!(cursor_err, "cursor must reject a torn item region");
    }
}
