//! Checkpoint on-disk format laws (DESIGN.md §12), mirroring the
//! torn-frame suites in `wire_transport.rs`: the chunked container and
//! the Wire-encoded snapshot inside it must round-trip bit-exactly, and
//! *every* way a file can be damaged — truncation at any prefix,
//! corruption of any single byte — must surface a typed
//! [`CheckpointError`], never a panic and never silently-wrong bytes.

use proptest::prelude::*;

use lazygraph_algorithms::Sssp;
use lazygraph_engine::checkpoint::{
    decode_container, encode_container, fnv1a64, CheckpointError, DeltaResume, EngineSnapshot,
    LazyResume, CKPT_CHUNK,
};
use lazygraph_engine::lazy_block::LazyCounters;
use lazygraph_engine::rebalance::{StructMigration, StructVertex};
use lazygraph_net::Wire;

// ---------------------------------------------------------------------------
// Container laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any payload survives the chunked container bit-exactly, and the
    /// encoding itself is deterministic.
    #[test]
    fn container_round_trips(payload in proptest::collection::vec(any::<u8>(), 0usize..4096)) {
        let file = encode_container(&payload);
        prop_assert_eq!(&file, &encode_container(&payload), "encode must be deterministic");
        prop_assert_eq!(decode_container(&file).expect("decode"), payload);
    }

    /// A file cut at any prefix is a typed error — never a panic, never
    /// a short payload that decodes "successfully".
    #[test]
    fn truncation_at_any_prefix_is_typed(
        payload in proptest::collection::vec(any::<u8>(), 1usize..512),
        frac in 0.0f64..1.0,
    ) {
        let file = encode_container(&payload);
        let cut = ((file.len() - 1) as f64 * frac) as usize;
        prop_assert!(
            decode_container(&file[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte container decoded", file.len()
        );
    }

    /// Flipping any single byte is *detected*: the decode either fails
    /// with a typed error or — never — succeeds with different bytes.
    /// (No flip is undetectable: header bytes break the magic/version/
    /// count, length bytes break framing, data bytes break the FNV-1a
    /// checksum, checksum bytes break themselves.)
    #[test]
    fn any_single_byte_flip_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1usize..512),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..255,
    ) {
        let mut file = encode_container(&payload);
        let pos = ((file.len() - 1) as f64 * pos_frac) as usize;
        file[pos] ^= flip;
        match decode_container(&file) {
            Err(_) => {}
            Ok(back) => prop_assert_eq!(
                back, payload,
                "corruption at byte {pos} decoded to different bytes",
            ),
        }
    }

    /// FNV-1a is the format's integrity primitive: incremental identity
    /// with the reference fold, and any flipped byte changes the sum.
    #[test]
    fn fnv1a_reference_fold(bytes in proptest::collection::vec(any::<u8>(), 0usize..256)) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        prop_assert_eq!(fnv1a64(&bytes), h);
    }
}

/// Chunk boundaries are exercised deterministically (proptest payloads
/// stay small to keep the suite fast): exactly one chunk, one byte over,
/// and a multi-chunk payload all round-trip.
#[test]
fn chunk_boundaries_round_trip() {
    for len in [CKPT_CHUNK - 1, CKPT_CHUNK, CKPT_CHUNK + 1, 2 * CKPT_CHUNK + 5] {
        let payload: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
        let file = encode_container(&payload);
        assert_eq!(
            decode_container(&file).expect("decode"),
            payload,
            "payload of {len} bytes"
        );
    }
}

/// A corrupted *checksum field* (not data) reports `ChecksumMismatch`,
/// the same typed error as corrupted data — the decoder cannot tell
/// which side lied, only that they disagree.
#[test]
fn corrupted_checksum_field_is_a_checksum_mismatch() {
    let payload = vec![0xABu8; 100];
    let mut file = encode_container(&payload);
    // Header is magic(4) + version(4) + count(8); the chunk checksum
    // sits 8 bytes after the chunk length that follows the header.
    let sum_pos = 4 + 4 + 8 + 8;
    file[sum_pos] ^= 0x01;
    match decode_container(&file) {
        Err(CheckpointError::ChecksumMismatch { chunk: 0 }) => {}
        other => panic!("expected ChecksumMismatch on chunk 0, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Snapshot laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Wire encoding of a full engine snapshot — including NaN-bit
    /// float payloads, `None` message slots, and the optional lazy
    /// resume block — round-trips bit-exactly.
    #[test]
    fn snapshot_round_trips(
        engine in 0u8..3,
        iterations in any::<u64>(),
        clock_bits in any::<u64>(),
        data_round in any::<u64>(),
        ctrl_round in any::<u64>(),
        vbits in proptest::collection::vec(any::<u32>(), 0usize..32),
        mbits in proptest::collection::vec((any::<bool>(), any::<u32>()), 0usize..32),
        active in proptest::collection::vec(any::<bool>(), 0usize..32),
        queue in proptest::collection::vec(any::<u32>(), 0usize..32),
        part_items in any::<u32>(),
        with_lazy in any::<bool>(),
        counters in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        prev_active in (any::<bool>(), any::<u64>()),
        last_trend_bits in any::<u64>(),
        do_local in any::<bool>(),
        first_stage_bits in (any::<bool>(), any::<u64>()),
        next_mode_m2m in any::<bool>(),
        pending_migration in (any::<bool>(), any::<u32>(), any::<u32>(), any::<u64>()),
        load_accum in any::<u64>(),
        with_delta in any::<bool>(),
        delta_counters in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        with_migration in any::<bool>(),
    ) {
        let prev_active = prev_active.0.then_some(prev_active.1);
        let first_stage_bits = first_stage_bits.0.then_some(first_stage_bits.1);
        let lazy = with_lazy.then_some(LazyResume {
            counters: LazyCounters {
                coherency_points: counters.0,
                local_subrounds: counters.1,
                a2a_exchanges: counters.2,
                m2m_exchanges: counters.3,
            },
            prev_active,
            last_trend_bits,
            iterations_seen: iterations,
            do_local,
            first_stage_bits,
            next_mode_m2m,
            pending_migration: pending_migration.0
                .then_some((pending_migration.1, pending_migration.2, pending_migration.3)),
            load_accum,
        });
        let delta = with_delta.then_some(DeltaResume {
            counters: LazyCounters {
                coherency_points: delta_counters.0,
                local_subrounds: delta_counters.1,
                a2a_exchanges: delta_counters.2,
                m2m_exchanges: delta_counters.3,
            },
        });
        let snap = EngineSnapshot::<Sssp> {
            engine,
            iterations,
            clock_bits,
            data_round,
            ctrl_round,
            vdata: vbits.iter().map(|&b| f32::from_bits(b)).collect(),
            coherent: vbits.iter().map(|&b| f32::from_bits(b ^ 1)).collect(),
            message: mbits.iter().map(|&(s, b)| s.then(|| f32::from_bits(b))).collect(),
            delta_msg: mbits.iter().map(|&(s, b)| s.then(|| f32::from_bits(!b))).collect(),
            active,
            queue,
            part_items,
            lazy: lazy.clone(),
            delta,
            migrations: if with_migration {
                vec![StructMigration {
                    from: 0,
                    to: 1,
                    victims: vec![(
                        StructVertex {
                            gid: 3,
                            master: 1,
                            holders: vec![0, 1],
                            global_out: 2,
                            global_in: 0,
                            global_deg: 2,
                        },
                        vec![(4, 1.0), (5, 2.0)],
                    )],
                    targets: vec![],
                    new_at_to: vec![3, 4, 5],
                }]
            } else {
                vec![]
            },
        };
        let bytes = snap.to_wire();
        prop_assert_eq!(&bytes, &snap.to_wire(), "encode must be deterministic");
        let back = EngineSnapshot::<Sssp>::from_wire(&bytes).expect("decode");
        // Bitwise comparison: floats as bit patterns, so NaNs count.
        prop_assert_eq!(format!("{back:?}"), format!("{snap:?}"));
        prop_assert_eq!(back.lazy, lazy);
        prop_assert_eq!(back.delta, delta);

        // And through the container, as `SnapshotStore::save` writes it.
        let file = encode_container(&bytes);
        prop_assert_eq!(decode_container(&file).expect("decode"), bytes);
    }

    /// Truncating the *payload inside a valid container* (a short write
    /// that still checksums, e.g. a torn copy re-chunked by a broken
    /// tool) surfaces as a typed decode error from the Wire layer.
    #[test]
    fn truncated_snapshot_payload_is_typed(cut_frac in 0.0f64..1.0) {
        let snap = EngineSnapshot::<Sssp> {
            engine: 0,
            iterations: 3,
            clock_bits: 42,
            data_round: 6,
            ctrl_round: 9,
            vdata: vec![1.0, 2.0, 3.0],
            coherent: vec![1.0, 2.0, 3.0],
            message: vec![None, Some(0.5), None],
            delta_msg: vec![Some(1.5), None, None],
            active: vec![true, false, true],
            queue: vec![2, 0],
            part_items: 1024,
            lazy: None,
            delta: None,
            migrations: vec![],
        };
        let bytes = snap.to_wire();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(EngineSnapshot::<Sssp>::from_wire(&bytes[..cut]).is_err());
    }
}
