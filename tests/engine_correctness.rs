//! Integration correctness: every engine × every algorithm × several
//! graphs, partitioners, and machine counts must reproduce the sequential
//! reference semantics (§3.5's claim, under test end-to-end).

use lazygraph::prelude::*;
use lazygraph_algorithms::reference;
use lazygraph_engine::IntervalPolicy;
use lazygraph_graph::generators::{erdos_renyi, grid2d, rmat, Grid2dConfig, RmatConfig};
use lazygraph_graph::GraphBuilder;

fn symmetric_weighted(g: &Graph, seed: u64) -> Graph {
    let mut b = GraphBuilder::new(g.num_vertices());
    b.extend(g.edges());
    b.symmetrize();
    b.randomize_weights(1.0, 16.0, seed);
    b.build()
}

fn engines() -> [EngineKind; 4] {
    [
        EngineKind::PowerGraphSync,
        EngineKind::PowerGraphAsync,
        EngineKind::LazyBlockAsync,
        EngineKind::LazyVertexAsync,
    ]
}

fn cfg_for(engine: EngineKind, bidirectional: bool) -> EngineConfig {
    EngineConfig::lazygraph()
        .with_engine(engine)
        .with_bidirectional(bidirectional)
}

#[test]
fn sssp_all_engines_match_dijkstra() {
    let g = symmetric_weighted(&grid2d(Grid2dConfig::road(12, 12, 1)), 1);
    let expected = reference::dijkstra(&g, VertexId(0));
    for engine in engines() {
        let result = run(&g, 4, &cfg_for(engine, false), &Sssp::new(0u32)).expect("cluster run");
        assert_eq!(
            result.values, expected,
            "engine {engine:?} diverged on SSSP"
        );
        assert!(result.metrics.converged, "{engine:?} did not converge");
    }
}

#[test]
fn cc_all_engines_match_union_find() {
    let g = symmetric_weighted(&erdos_renyi(400, 900, 2), 2);
    let expected = reference::connected_components(&g);
    for engine in engines() {
        let result = run(&g, 4, &cfg_for(engine, true), &ConnectedComponents).expect("cluster run");
        assert_eq!(result.values, expected, "engine {engine:?} diverged on CC");
    }
}

#[test]
fn kcore_all_engines_match_peeling() {
    let g = symmetric_weighted(&rmat(RmatConfig::graph500(9, 6, 3)), 3);
    let expected = reference::kcore_peeling(&g, 4);
    for engine in engines() {
        let result = run(&g, 4, &cfg_for(engine, true), &KCore::new(4)).expect("cluster run");
        assert_eq!(
            result.values, expected,
            "engine {engine:?} diverged on k-core"
        );
    }
}

#[test]
fn bfs_all_engines_match_reference() {
    let g = rmat(RmatConfig::weblike(9, 6, 4));
    let expected = reference::bfs_levels(&g, VertexId(0));
    for engine in engines() {
        let result = run(&g, 4, &cfg_for(engine, false), &Bfs::new(0u32)).expect("cluster run");
        assert_eq!(result.values, expected, "engine {engine:?} diverged on BFS");
    }
}

#[test]
fn pagerank_all_engines_near_power_iteration() {
    let g = erdos_renyi(300, 2400, 5);
    let power = reference::pagerank_power(&g, 150);
    for engine in engines() {
        let program = PageRankDelta { tolerance: 1e-5 };
        let result = run(&g, 4, &cfg_for(engine, false), &program).expect("cluster run");
        for (v, (got, want)) in result.values.iter().zip(&power).enumerate() {
            assert!(
                (got.rank - want).abs() < 0.01 * want.max(1.0),
                "engine {engine:?}, vertex {v}: rank {} vs power {}",
                got.rank,
                want
            );
        }
    }
}

#[test]
fn lazy_matches_reference_across_partitioners() {
    let g = symmetric_weighted(&rmat(RmatConfig::graph500(9, 8, 6)), 6);
    let expected = reference::dijkstra(&g, VertexId(0));
    for strategy in PartitionStrategy::all() {
        let cfg = EngineConfig::lazygraph().with_partition(strategy);
        let result = run(&g, 6, &cfg, &Sssp::new(0u32)).expect("cluster run");
        assert_eq!(result.values, expected, "partitioner {strategy:?} diverged");
    }
}

#[test]
fn lazy_matches_reference_across_machine_counts() {
    let g = symmetric_weighted(&grid2d(Grid2dConfig::road(10, 10, 7)), 7);
    let expected = reference::kcore_peeling(&g, 3);
    for p in [1, 2, 3, 8, 13] {
        let cfg = EngineConfig::lazygraph().with_bidirectional(true);
        let result = run(&g, p, &cfg, &KCore::new(3)).expect("cluster run");
        assert_eq!(result.values, expected, "P={p} diverged");
    }
}

#[test]
fn lazy_interval_policies_all_correct() {
    let g = symmetric_weighted(&erdos_renyi(250, 700, 8), 8);
    let expected = reference::connected_components(&g);
    for interval in [
        IntervalPolicy::paper_adaptive(),
        IntervalPolicy::AlwaysLazy,
        IntervalPolicy::NeverLazy,
    ] {
        let cfg = EngineConfig::lazygraph()
            .with_interval(interval)
            .with_bidirectional(true);
        let result = run(&g, 4, &cfg, &ConnectedComponents).expect("cluster run");
        assert_eq!(result.values, expected, "interval {interval:?} diverged");
    }
}

#[test]
fn lazy_comm_modes_all_correct() {
    let g = symmetric_weighted(&rmat(RmatConfig::graph500(8, 8, 9)), 9);
    let expected = reference::dijkstra(&g, VertexId(3));
    for mode in [
        CommModePolicy::Auto,
        CommModePolicy::AllToAll,
        CommModePolicy::MirrorsToMaster,
    ] {
        let cfg = EngineConfig::lazygraph().with_comm_mode(mode);
        let result = run(&g, 5, &cfg, &Sssp::new(3u32)).expect("cluster run");
        assert_eq!(result.values, expected, "comm mode {mode:?} diverged");
    }

    // Mirrors-to-master must also hold for a non-idempotent (additive)
    // algebra, where the Inverse step is load-bearing.
    let expected = reference::kcore_peeling(&g, 5);
    let cfg = EngineConfig::lazygraph()
        .with_comm_mode(CommModePolicy::MirrorsToMaster)
        .with_bidirectional(true);
    let result = run(&g, 5, &cfg, &KCore::new(5)).expect("cluster run");
    assert_eq!(result.values, expected, "m2m + additive algebra diverged");
}

#[test]
fn splitter_heavy_configuration_stays_correct() {
    // Crank the parallel-edge budget far beyond the default and make sure
    // semantics are unchanged (only placement/transmission differ).
    let g = symmetric_weighted(&rmat(RmatConfig::graph500(8, 8, 10)), 10);
    let expected = reference::connected_components(&g);
    let mut cfg = EngineConfig::lazygraph().with_bidirectional(true);
    cfg.splitter.t_extra = 0.01;
    cfg.splitter.max_fraction = 0.2;
    let result = run(&g, 6, &cfg, &ConnectedComponents).expect("cluster run");
    assert_eq!(result.values, expected);
}
