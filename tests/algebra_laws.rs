//! Property tests of each vertex program's algebra — the §3.5 correctness
//! proof rests on `Sum ⊕` being commutative and associative and `Inverse`
//! undoing one contribution; these laws are what the engines assume.

use proptest::prelude::*;

use lazygraph::prelude::*;
use lazygraph_algorithms::{MultiSourceBfs, WidestPath};
use lazygraph_engine::VertexProgram;
use lazygraph_graph::VertexId;

fn check_comm_assoc<P: VertexProgram>(p: &P, a: P::Delta, b: P::Delta, c: P::Delta) {
    assert_eq!(p.sum(a, b), p.sum(b, a), "⊕ must be commutative");
    assert_eq!(
        p.sum(p.sum(a, b), c),
        p.sum(a, p.sum(b, c)),
        "⊕ must be associative"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kcore_algebra(a in 0u32..1000, b in 0u32..1000, c in 0u32..1000) {
        let p = KCore::new(3);
        check_comm_assoc(&p, a, b, c);
        // Inverse law: inverse(sum(a, b), a) == b.
        prop_assert_eq!(p.inverse(p.sum(a, b), a), b);
    }

    #[test]
    fn sssp_algebra(a in 0.0f32..1e6, b in 0.0f32..1e6, c in 0.0f32..1e6) {
        let p = Sssp::new(0u32);
        check_comm_assoc(&p, a, b, c);
        // Idempotence: a ⊕ a == a, and the identity Inverse is harmless:
        // sum(x, inverse(sum(x, y), x)) == sum(x, y).
        prop_assert_eq!(p.sum(a, a), a);
        let total = p.sum(a, b);
        prop_assert_eq!(p.sum(a, p.inverse(total, a)), total);
    }

    #[test]
    fn cc_algebra(a in any::<u32>(), b in any::<u32>(), c in any::<u32>()) {
        let p = ConnectedComponents;
        check_comm_assoc(&p, a, b, c);
        prop_assert_eq!(p.sum(a, a), a);
    }

    #[test]
    fn bfs_algebra(a in any::<u32>(), b in any::<u32>(), c in any::<u32>()) {
        let p = Bfs::new(0u32);
        check_comm_assoc(&p, a, b, c);
        prop_assert_eq!(p.sum(a, a), a);
    }

    #[test]
    fn widest_path_algebra(a in 0.0f32..1e6, b in 0.0f32..1e6, c in 0.0f32..1e6) {
        let p = WidestPath::new(0u32);
        check_comm_assoc(&p, a, b, c);
        prop_assert_eq!(p.sum(a, a), a);
    }

    #[test]
    fn multi_bfs_algebra(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let p = MultiSourceBfs::new(vec![VertexId(0)]);
        check_comm_assoc(&p, a, b, c);
        prop_assert_eq!(p.sum(a, a), a);
    }

    /// PageRank's algebra over sane magnitudes (floats are only
    /// approximately associative; the engine's proof needs exactness only
    /// up to the program's own tolerance, so we check within 1e-9).
    #[test]
    fn pagerank_algebra(a in -1e3f64..1e3, b in -1e3f64..1e3, c in -1e3f64..1e3) {
        let p = PageRankDelta::default();
        prop_assert_eq!(p.sum(a, b), p.sum(b, a));
        let l = p.sum(p.sum(a, b), c);
        let r = p.sum(a, p.sum(b, c));
        prop_assert!((l - r).abs() < 1e-9);
        let undone = p.inverse(p.sum(a, b), a);
        prop_assert!((undone - b).abs() < 1e-9);
    }

    /// The scatter transform of SSSP composes with ⊕ the way path
    /// relaxation requires: min distributes over +w.
    #[test]
    fn sssp_scatter_distributes(a in 0.0f32..1e5, b in 0.0f32..1e5, w in 0.0f32..1e3) {
        let p = Sssp::new(0u32);
        let ctx = lazygraph_engine::VertexCtx {
            out_degree: 1,
            in_degree: 1,
            degree: 2,
            num_vertices: 2,
        };
        let e = lazygraph_engine::EdgeCtx {
            dst: VertexId(1),
            weight: w,
        };
        let s = |d: f32| p.scatter(VertexId(0), &d, d, &ctx, &e).unwrap();
        prop_assert_eq!(s(p.sum(a, b)), p.sum(s(a), s(b)));
    }
}
