//! Checkpoint/replay fault-tolerance suite (DESIGN.md §12).
//!
//! Every test here follows the same shape: run an undisturbed **oracle**
//! gang with checkpointing enabled, then re-run the identical job with a
//! deterministic fail point armed in exactly one worker
//! (`LAZYGRAPH_FAILPOINT`, which calls `abort()` — no unwinding, no
//! clean-shutdown frame, a genuinely torn process). The launcher respawns
//! the victim with `--resume`; it loads its newest valid snapshot,
//! rejoins both meshes at the recorded round watermarks, and replays
//! forward. The recovered run must be **bitwise identical** to the
//! oracle: same values, same iteration count, same simulated time bits.
//!
//! Nothing here sleeps or polls wall-clock state: fail points key on
//! superstep / round counters (deterministic under the PR 1 bitwise-
//! determinism contract), and recovery is proven by output equality plus
//! the `reconnects` / `replay_rounds` counters — if a fail point silently
//! stopped firing, `reconnects == 0` fails the test rather than letting
//! it pass vacuously.

use lazygraph::multiproc::{
    run_multiprocess, run_multiprocess_with, AlgoSpec, MpOptions, MultiprocOutcome,
};
use lazygraph::prelude::*;
use lazygraph_graph::generators::{rmat, RmatConfig};

fn worker_bin() -> &'static std::path::Path {
    std::path::Path::new(env!("CARGO_BIN_EXE_lazygraph-worker"))
}

/// Small power-law graph for the kill matrix: big enough that SSSP takes
/// several supersteps (so there are checkpoints to resume from and rounds
/// to replay), small enough that a 4-process gang stays fast.
fn matrix_graph() -> Graph {
    let g = rmat(RmatConfig::graph500(7, 6, 5));
    let mut b = GraphBuilder::new(g.num_vertices());
    b.extend(g.edges());
    b.symmetrize();
    b.randomize_weights(1.0, 9.0, 5);
    b.build()
}

/// Larger graph for the pipelined-streaming kill: the pipelined exchange
/// only streams a part once ≥ `PIPELINE_PART_ITEMS` (1024) updates are
/// staged for one destination, so the 2-machine apply broadcast needs
/// over a thousand replicated masters on the victim.
fn stream_graph() -> Graph {
    let g = rmat(RmatConfig::graph500(13, 8, 5));
    let mut b = GraphBuilder::new(g.num_vertices());
    b.extend(g.edges());
    b.symmetrize();
    b.randomize_weights(1.0, 9.0, 5);
    b.build()
}

fn cfg(engine: EngineKind) -> EngineConfig {
    EngineConfig::lazygraph()
        .with_engine(engine)
        .with_threads(2)
        .with_block_size(64)
}

/// Checkpoint every 2 supersteps, generous rejoin window (an upper bound,
/// not a wait — recovery is event-driven), budget for one respawn plus
/// slack. The oracle uses the same options minus the fail point so both
/// runs share a checkpoint cadence.
fn mp_opts(failpoint: Option<(usize, String)>) -> MpOptions {
    MpOptions {
        checkpoint_every: 2,
        rejoin_window_ms: 30_000,
        respawn_budget: 2,
        failpoint,
    }
}

/// `{:?}` on finite floats round-trips, so string equality on the value
/// vector is bitwise equality; `sim_time` is compared as raw bits.
fn fingerprint<V: std::fmt::Debug>(o: &MultiprocOutcome<V>) -> String {
    format!(
        "values={:?} iters={} conv={} sim={} counters={:?}",
        o.values,
        o.iterations,
        o.converged,
        o.sim_time.to_bits(),
        o.counters
    )
}

/// Worker rank that gets killed in every fault run.
const VICTIM: usize = 1;

/// Kill points for a run of `f` supersteps: first, middle, last.
fn kill_points(f: u64) -> Vec<u64> {
    let mut ns = vec![1, (f / 2).max(1), f.max(1)];
    ns.sort_unstable();
    ns.dedup();
    ns
}

/// The recovery-equivalence matrix body: oracle first, then kill the
/// victim at the first / middle / last superstep and demand a bitwise
/// identical outcome each time.
fn run_matrix(engine: EngineKind, workers: usize) {
    let g = matrix_graph();
    let base = cfg(engine);
    let spec = AlgoSpec::Sssp { source: 0 };

    let oracle = run_multiprocess_with::<Sssp>(&g, workers, &base, &spec, worker_bin(), &mp_opts(None))
        .unwrap_or_else(|e| panic!("{} {workers}w oracle: {e}", engine.name()));
    assert!(
        oracle.iterations >= 3,
        "{} {workers}w: oracle converged in {} supersteps — too few for a \
         first/middle/last kill matrix, grow the graph",
        engine.name(),
        oracle.iterations
    );
    assert_eq!(oracle.stats.reconnects, 0, "oracle must run undisturbed");
    assert_eq!(oracle.stats.replay_rounds, 0, "oracle must run undisturbed");
    assert!(
        oracle.stats.snapshot_bytes > 0,
        "{} {workers}w: checkpointing was on but no snapshot was written",
        engine.name()
    );
    let want = fingerprint(&oracle);

    // Checkpointing must be observationally free: the same job without
    // any recovery machinery lands on the same bits.
    if workers == 4 {
        let plain = run_multiprocess::<Sssp>(&g, workers, &base, &spec, worker_bin())
            .unwrap_or_else(|e| panic!("{} {workers}w plain: {e}", engine.name()));
        assert_eq!(
            fingerprint(&plain),
            want,
            "{} {workers}w: enabling checkpoints changed the result",
            engine.name()
        );
    }

    for n in kill_points(oracle.iterations) {
        let opts = mp_opts(Some((VICTIM, format!("superstep:{n}"))));
        let out = run_multiprocess_with::<Sssp>(&g, workers, &base, &spec, worker_bin(), &opts)
            .unwrap_or_else(|e| panic!("{} {workers}w kill@{n}: {e}", engine.name()));
        assert_eq!(
            fingerprint(&out),
            want,
            "{} {workers}w: recovery after a kill at superstep {n} is not \
             bitwise identical to the oracle",
            engine.name()
        );
        // If the fail point never fired the run degenerates to the oracle
        // and would pass vacuously — the reconnect counters catch that.
        assert!(
            out.stats.reconnects >= 1,
            "{} {workers}w kill@{n}: fail point never fired (no reconnects)",
            engine.name()
        );
        if n >= 2 {
            // To reach superstep n ≥ 2 the gang completed superstep n-1,
            // so the survivors' logs hold rounds the rejoiner needs.
            assert!(
                out.stats.replay_rounds >= 1,
                "{} {workers}w kill@{n}: rejoin happened but nothing was replayed",
                engine.name()
            );
        }
    }
}

#[test]
fn sync_recovers_bitwise_2_workers() {
    run_matrix(EngineKind::PowerGraphSync, 2);
}

#[test]
fn sync_recovers_bitwise_4_workers() {
    run_matrix(EngineKind::PowerGraphSync, 4);
}

#[test]
fn lazy_block_recovers_bitwise_2_workers() {
    run_matrix(EngineKind::LazyBlockAsync, 2);
}

#[test]
fn lazy_block_recovers_bitwise_4_workers() {
    run_matrix(EngineKind::LazyBlockAsync, 4);
}

#[test]
fn delta_recovers_bitwise_2_workers() {
    // Delta checkpoints carry `(value, delta)` state implicitly through
    // the MachineState snapshot plus the DeltaResume counter extras; the
    // scheduler itself is stateless across epochs, so resume re-plans
    // from the restored state and must land on the oracle's bits.
    run_matrix(EngineKind::DeltaAccum, 2);
}

#[test]
fn delta_recovers_bitwise_4_workers() {
    run_matrix(EngineKind::DeltaAccum, 4);
}

/// Kill the victim *mid pipelined exchange*: the `stream:<round>:<part>`
/// fail point aborts just before the victim streams its first part of
/// data round 1 (the apply broadcast of superstep 1) — peers are left
/// holding a torn, partially-streamed round. The respawned victim has no
/// snapshot yet (first checkpoint lands after superstep 2), so this is
/// the watermark-zero path: full regeneration on the victim, full log
/// replay from the survivor, count-based dedupe discarding every
/// duplicate frame.
#[test]
fn kill_during_pipelined_exchange_recovers_bitwise() {
    let g = stream_graph();
    let workers = 2;
    let tolerance = 1e-5;
    let mut base = cfg(EngineKind::PowerGraphSync).with_pipeline(true);
    // Bounded run: recovery equivalence does not require convergence,
    // and eight supersteps of a scale-12 graph keep the test quick.
    base.max_iterations = 8;
    let spec = AlgoSpec::PageRank { tolerance };

    let oracle =
        run_multiprocess_with::<PageRankDelta>(&g, workers, &base, &spec, worker_bin(), &mp_opts(None))
            .expect("pipelined oracle");

    let opts = mp_opts(Some((VICTIM, "stream:1:1".into())));
    let out = run_multiprocess_with::<PageRankDelta>(&g, workers, &base, &spec, worker_bin(), &opts)
        .expect("pipelined kill run");

    assert_eq!(
        fingerprint(&out),
        fingerprint(&oracle),
        "recovery after a kill mid pipelined exchange is not bitwise identical"
    );
    // The fail point only fires if round 1 actually streamed a part
    // (≥ 1024 staged updates for one destination). A vacuous pass would
    // mean the graph stopped exercising the pipelined path.
    assert!(
        out.stats.reconnects >= 1,
        "stream:1:1 never fired — superstep 1's apply broadcast no longer \
         streams parts; grow stream_graph()"
    );
    assert!(out.stats.replay_rounds >= 1, "nothing was replayed on rejoin");
}

/// Kill the victim around a live migration (DESIGN.md §16): the skewed
/// graph plus the adversarial all-hubs-on-machine-0 placement guarantees
/// the rebalancer plans a move at the superstep-2 check and executes it
/// at the superstep-3 barrier. The kill matrix hits the superstep that
/// *plans* the move (its checkpoint carries `pending_migration`), the
/// superstep that *executes* it (the Migrate allgather must replay from
/// the survivors' logs), and the steady state after — every recovery must
/// land on the oracle's bits, and the oracle itself must prove a
/// migration actually happened.
#[test]
fn kill_during_live_migration_recovers_bitwise() {
    let g = {
        let g = rmat(RmatConfig::skewed(8, 8, 9));
        let mut b = GraphBuilder::new(g.num_vertices());
        b.extend(g.edges());
        b.symmetrize();
        b.randomize_weights(1.0, 9.0, 5);
        b.build()
    };
    let workers = 4;
    let base = cfg(EngineKind::LazyBlockAsync)
        .with_partition(PartitionStrategy::AdversarialHubs)
        .with_rebalance(RebalanceConfig::enabled(2, 1200, 16));
    let spec = AlgoSpec::Sssp { source: 0 };

    let oracle =
        run_multiprocess_with::<Sssp>(&g, workers, &base, &spec, worker_bin(), &mp_opts(None))
            .expect("migration oracle");
    assert!(
        oracle.stats.migrated_vertices > 0,
        "adversarial placement triggered no migration — the kill matrix is vacuous"
    );
    // Multiprocess workers run the migration allgather over the real TCP
    // control mesh, so this is the one place Migrate frames are
    // observable on a wire (the single-process driver folds collectives
    // through shared memory, even on the TCP data transport).
    assert!(
        oracle.stats.migrate_frames > 0,
        "no Migrate-tagged frames crossed the control mesh"
    );
    assert!(
        oracle.iterations >= 4,
        "oracle converged in {} supersteps — too few to kill around the \
         superstep-3 migration barrier, grow the graph",
        oracle.iterations
    );
    let want = fingerprint(&oracle);

    // Checkpointing plus migration must still be observationally free.
    let plain = run_multiprocess::<Sssp>(&g, workers, &base, &spec, worker_bin())
        .expect("migration plain run");
    assert_eq!(
        fingerprint(&plain),
        want,
        "enabling checkpoints changed a migrated run"
    );

    // Superstep 2 plans the move, 3 executes it, 4 is post-migration
    // steady state; the final superstep exercises resume from a snapshot
    // whose shard was patched by the full migration log.
    let mut kills = vec![2u64, 3, 4, oracle.iterations];
    kills.dedup();
    for n in kills {
        let opts = mp_opts(Some((VICTIM, format!("superstep:{n}"))));
        let out = run_multiprocess_with::<Sssp>(&g, workers, &base, &spec, worker_bin(), &opts)
            .unwrap_or_else(|e| panic!("migration kill@{n}: {e}"));
        assert_eq!(
            fingerprint(&out),
            want,
            "recovery after a kill at superstep {n} of a migrated run is not \
             bitwise identical to the oracle"
        );
        assert!(
            out.stats.reconnects >= 1,
            "kill@{n}: fail point never fired (no reconnects)"
        );
    }
}
