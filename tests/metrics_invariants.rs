//! Invariants of the measurement plumbing itself — the quantities the
//! figures plot must obey the protocol's structure exactly.

use lazygraph::prelude::*;
use lazygraph_cluster::Phase;
use lazygraph_graph::Dataset;

fn road() -> Graph {
    Dataset::RoadNetCaLike.build_symmetric(0.1)
}

fn social() -> Graph {
    Dataset::TwitterLike.build_symmetric(0.1)
}

#[test]
fn sync_engine_pays_three_syncs_per_superstep() {
    let g = road();
    let r = run(&g, 6, &EngineConfig::powergraph_sync(), &Sssp::new(0u32)).expect("cluster run");
    assert_eq!(
        r.metrics.global_syncs(),
        3 * r.metrics.iterations,
        "PowerGraph Sync must pay exactly 3 global syncs per superstep (§2.2)"
    );
    // And exactly two communication phases: gather and apply.
    let snap = &r.metrics.stats;
    assert!(snap.phase(Phase::Gather).est_bytes > 0);
    assert!(snap.phase(Phase::Apply).est_bytes > 0);
    assert_eq!(snap.phase(Phase::Coherency).est_bytes, 0);
    assert_eq!(snap.phase(Phase::Async).est_bytes, 0);
}

#[test]
fn lazy_engine_pays_one_sync_per_coherency_point() {
    let g = road();
    let r = run(&g, 6, &EngineConfig::lazygraph(), &Sssp::new(0u32)).expect("cluster run");
    assert_eq!(
        r.metrics.global_syncs(),
        r.metrics.coherency_points,
        "LazyBlockAsync: one global sync per data coherency point (Fig. 1(c))"
    );
    assert_eq!(
        r.metrics.a2a_exchanges + r.metrics.m2m_exchanges,
        r.metrics.coherency_points
    );
    let snap = &r.metrics.stats;
    assert_eq!(snap.phase(Phase::Gather).est_bytes, 0);
    assert_eq!(snap.phase(Phase::Apply).est_bytes, 0);
    assert!(snap.phase(Phase::Coherency).est_bytes > 0);
}

#[test]
fn async_engine_has_no_barriers() {
    let g = road();
    let r = run(&g, 4, &EngineConfig::powergraph_async(), &Sssp::new(0u32)).expect("cluster run");
    assert_eq!(r.metrics.global_syncs(), 0);
    assert!(r.metrics.stats.phase(Phase::Async).est_bytes > 0);
    assert!(r.metrics.sim_time > 0.0);
}

#[test]
fn lazy_reduces_syncs_and_traffic_on_road(// the §5.3 headline mechanism
) {
    let g = road();
    let sync = run(&g, 8, &EngineConfig::powergraph_sync(), &Sssp::new(0u32)).expect("cluster run").metrics;
    let lazy = run(&g, 8, &EngineConfig::lazygraph(), &Sssp::new(0u32)).expect("cluster run").metrics;
    assert!(
        lazy.global_syncs() * 3 < sync.global_syncs(),
        "lazy must cut global syncs by >3x on road SSSP: {} vs {}",
        lazy.global_syncs(),
        sync.global_syncs()
    );
    assert!(
        lazy.traffic_bytes() < sync.traffic_bytes(),
        "lazy must cut traffic on road SSSP: {} vs {}",
        lazy.traffic_bytes(),
        sync.traffic_bytes()
    );
    assert!(
        lazy.sim_time < sync.sim_time,
        "lazy must be faster on road SSSP"
    );
}

#[test]
fn speedup_ordering_tracks_lambda() {
    // §5.3: "The lower λ of the input graph, the greater the speedup."
    let road = road();
    let social = social();
    let s = |g: &Graph| {
        let sync = run(g, 8, &EngineConfig::powergraph_sync(), &Sssp::new(0u32)).expect("cluster run").metrics;
        let lazy = run(g, 8, &EngineConfig::lazygraph(), &Sssp::new(0u32)).expect("cluster run").metrics;
        (lazy.lambda, sync.sim_time / lazy.sim_time)
    };
    let (road_lambda, road_speedup) = s(&road);
    let (social_lambda, social_speedup) = s(&social);
    assert!(road_lambda < social_lambda, "λ ordering broken");
    assert!(
        road_speedup > social_speedup,
        "speedup ordering must track 1/λ: road {road_speedup:.2} vs social {social_speedup:.2}"
    );
}

#[test]
fn sim_breakdown_sums_to_sim_time_for_bsp_engines() {
    let g = road();
    for cfg in [EngineConfig::powergraph_sync(), EngineConfig::lazygraph()] {
        let r = run(&g, 5, &cfg, &Sssp::new(0u32)).expect("cluster run");
        let total = r.metrics.breakdown.total();
        assert!(
            (total - r.metrics.sim_time).abs() < 0.05 * r.metrics.sim_time,
            "{}: breakdown {total} vs sim {}",
            r.metrics.engine,
            r.metrics.sim_time
        );
    }
}

#[test]
fn deterministic_metrics_for_bsp_engines() {
    // The BSP engines are fully deterministic: same graph, same config →
    // identical counted quantities AND identical simulated time.
    let g = social();
    let run_once = || {
        let r = run(&g, 6, &EngineConfig::lazygraph(), &Sssp::new(0u32)).expect("cluster run");
        (
            r.metrics.global_syncs(),
            r.metrics.traffic_bytes(),
            r.metrics.iterations,
            r.metrics.sim_time.to_bits(),
            r.values,
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn sync_engine_determinism() {
    let g = road();
    let run_once = || {
        let r = run(&g, 7, &EngineConfig::powergraph_sync(), &Sssp::new(0u32)).expect("cluster run");
        (r.metrics.global_syncs(), r.metrics.traffic_bytes(), r.metrics.sim_time.to_bits())
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn single_machine_runs_have_no_traffic() {
    let g = road();
    for cfg in [
        EngineConfig::powergraph_sync(),
        EngineConfig::lazygraph(),
        EngineConfig::powergraph_async(),
    ] {
        let r = run(&g, 1, &cfg, &Sssp::new(0u32)).expect("cluster run");
        assert_eq!(
            r.metrics.traffic_bytes(),
            0,
            "{}: single machine must not communicate",
            r.metrics.engine
        );
    }
}

#[test]
fn recovery_counters_stay_zero_without_faults() {
    // The recovery counters (DESIGN.md §12) are strictly event-driven:
    // `reconnects` only ticks on a Rejoin handshake, `snapshot_bytes`
    // only on a checkpoint save, `replay_rounds` only when a logged
    // round is re-sent to a rejoiner. An in-proc run has none of those
    // — any nonzero here means recovery machinery leaked into the
    // fault-free fast path.
    let g = road();
    for cfg in [EngineConfig::powergraph_sync(), EngineConfig::lazygraph()] {
        let r = run(&g, 4, &cfg, &Sssp::new(0u32)).expect("cluster run");
        let s = &r.metrics.stats;
        assert_eq!(s.reconnects, 0, "{}", r.metrics.engine);
        assert_eq!(s.snapshot_bytes, 0, "{}", r.metrics.engine);
        assert_eq!(s.replay_rounds, 0, "{}", r.metrics.engine);
    }
}

#[test]
fn recovery_counters_survive_wire_and_merge() {
    use lazygraph_cluster::{NetStats, StatsSnapshot};
    use lazygraph_net::Wire;

    // The counters ride the worker result files as part of the
    // StatsSnapshot Wire encoding, and the launcher aggregates them by
    // `merge` — both paths must preserve them exactly.
    let stats = NetStats::default();
    stats.record_reconnect();
    stats.record_reconnect();
    stats.record_snapshot_bytes(12_345);
    stats.record_replay_round();
    let snap = stats.snapshot();
    assert_eq!(snap.reconnects, 2);
    assert_eq!(snap.snapshot_bytes, 12_345);
    assert_eq!(snap.replay_rounds, 1);

    let back = StatsSnapshot::from_wire(&snap.to_wire()).expect("decode");
    assert_eq!(back.reconnects, snap.reconnects);
    assert_eq!(back.snapshot_bytes, snap.snapshot_bytes);
    assert_eq!(back.replay_rounds, snap.replay_rounds);

    let mut merged = StatsSnapshot::default();
    merged.merge(&snap);
    merged.merge(&back);
    assert_eq!(merged.reconnects, 4);
    assert_eq!(merged.snapshot_bytes, 24_690);
    assert_eq!(merged.replay_rounds, 2);
}

#[test]
fn zero_copy_counters_survive_wire_and_merge() {
    use lazygraph_cluster::{NetStats, StatsSnapshot};
    use lazygraph_net::Wire;

    // PR 8 counters: `zero_copy_frames` and `fold_runs` are sums across
    // workers, `adaptive_part_items` is a high-water mark — merge must
    // take the max, not add (two workers both cruising at 2048 did not
    // jointly reach 4096).
    let stats = NetStats::default();
    stats.record_zero_copy_frames(5);
    stats.record_fold_runs(17);
    stats.record_adaptive_part_items(2048);
    stats.record_adaptive_part_items(512); // later, smaller: high-water holds
    let snap = stats.snapshot();
    assert_eq!(snap.zero_copy_frames, 5);
    assert_eq!(snap.fold_runs, 17);
    assert_eq!(snap.adaptive_part_items, 2048);

    let back = StatsSnapshot::from_wire(&snap.to_wire()).expect("decode");
    assert_eq!(back.zero_copy_frames, snap.zero_copy_frames);
    assert_eq!(back.fold_runs, snap.fold_runs);
    assert_eq!(back.adaptive_part_items, snap.adaptive_part_items);

    let other = StatsSnapshot {
        zero_copy_frames: 3,
        fold_runs: 4,
        adaptive_part_items: 1024,
        ..Default::default()
    };
    let mut merged = StatsSnapshot::default();
    merged.merge(&snap);
    merged.merge(&other);
    assert_eq!(merged.zero_copy_frames, 8);
    assert_eq!(merged.fold_runs, 21);
    assert_eq!(merged.adaptive_part_items, 2048, "merge must max, not sum");

    // The report must surface all three so a perf log names them.
    let lines = merged.report_lines();
    assert!(
        lines.iter().any(|l| l.contains("zero_copy_frames=8")
            && l.contains("fold_runs=21")
            && l.contains("adaptive_part_items=2048")),
        "report lines missing PR 8 counters: {lines:?}"
    );
}

#[test]
fn tcp_inbound_path_is_zero_copy_and_adaptation_stays_clamped() {
    use lazygraph_engine::exchange::{PART_ITEMS_MAX, PART_ITEMS_MIN};
    use lazygraph_engine::TransportKind;

    // Every framed-TCP data batch should draw its payload buffer from the
    // reader's pool after warmup and route through the borrowing cursor —
    // `zero_copy_frames` is counted at the only place payload buffers are
    // born, so frames ≈ zero-copy frames proves the per-batch `Vec<Item>`
    // is gone. The adaptive controller's high-water must stay inside its
    // clamp window whenever it records at all.
    let g = road();
    for base in [EngineConfig::powergraph_sync(), EngineConfig::lazygraph()] {
        let cfg = base.with_transport(TransportKind::Tcp).with_pipeline(true);
        let r = run(&g, 4, &cfg, &Sssp::new(0u32)).expect("cluster run");
        let s = &r.metrics.stats;
        assert!(
            s.zero_copy_frames > 0,
            "{}: tcp run recorded no zero-copy frames",
            r.metrics.engine
        );
        assert!(
            s.adaptive_part_items >= PART_ITEMS_MIN as u64
                && s.adaptive_part_items <= PART_ITEMS_MAX as u64,
            "{}: adaptive high-water {} outside [{PART_ITEMS_MIN}, {PART_ITEMS_MAX}]",
            r.metrics.engine,
            s.adaptive_part_items
        );
    }
    // In-proc ships no frames, so the counter must stay zero there: it
    // measures the wire path, not deliveries.
    let r = run(&g, 4, &EngineConfig::lazygraph(), &Sssp::new(0u32)).expect("cluster run");
    assert_eq!(r.metrics.stats.zero_copy_frames, 0);
}

#[test]
fn fold_runs_are_deterministic_and_fingerprint_stable() {
    // `fold_runs` counts contiguous same-vertex runs in the delivered
    // segments; segment contents are part of the determinism contract, so
    // the counter must reproduce run-to-run in a fixed configuration.
    // Sender-side combining leaves one item per vertex per sender, so a
    // hot vertex's deltas sit in consecutive *segments* of its block —
    // the run fold spans those boundaries, so the default production
    // config must already vectorize on a skewed graph.
    let g = social();
    let run_once = || {
        let cfg = EngineConfig::lazygraph();
        let r = run(&g, 6, &cfg, &PageRankDelta::default()).expect("cluster run");
        (r.metrics.stats.fold_runs, r.metrics.sim_time.to_bits())
    };
    let (folds, sim) = run_once();
    assert_eq!((folds, sim), run_once());
    assert!(
        folds > 0,
        "PageRank on a social graph must fold at least one multi-delta run"
    );
}

#[test]
fn iteration_cap_reports_non_convergence() {
    let g = road();
    let mut cfg = EngineConfig::powergraph_sync();
    cfg.max_iterations = 3; // far too few for a road lattice
    let r = run(&g, 4, &cfg, &Sssp::new(0u32)).expect("cluster run");
    assert!(!r.metrics.converged);
    assert_eq!(r.metrics.iterations, 3);
}
