//! Wire-transport integration suite (DESIGN.md §10).
//!
//! Three layers, matching the transport stack bottom-up:
//!
//! 1. **Codec laws** — property tests that `Wire` round-trips bit-exactly
//!    (floats compared as bit patterns, so NaN payloads count), that
//!    encodings are self-delimiting (values concatenate with no
//!    separators), and that encoding is deterministic.
//! 2. **Framing under adversity** — a reader that returns 1–3 bytes per
//!    `read` call must still reassemble every frame exactly; a stream cut
//!    mid-frame must surface a typed error, never a short frame.
//! 3. **Transport equivalence** — the same run over loopback TCP
//!    (threaded and multiprocess) produces *bitwise* identical vertex
//!    values, iteration counts, and simulated time as the in-proc channel
//!    mesh, while reporting measured wire bytes that the channel mesh
//!    (which never serializes) reports as zero.

use std::io::Read;

use proptest::prelude::*;

use lazygraph::multiproc::{run_multiprocess, AlgoSpec};
use lazygraph::prelude::*;
use lazygraph_algorithms::PageRankData;
use lazygraph_graph::generators::{rmat, RmatConfig};
use lazygraph_net::{FrameKind, FrameReader, NetError, Wire, WireReader, HEADER_LEN};
use lazygraph_engine::TransportKind;

// ---------------------------------------------------------------------------
// 1. Codec laws
// ---------------------------------------------------------------------------

/// Round-trips `x` through a fresh buffer and also checks determinism
/// (two encodes agree byte-for-byte).
fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(x: &T) {
    let bytes = x.to_wire();
    assert_eq!(bytes, x.to_wire(), "encode must be deterministic");
    let back = T::from_wire(&bytes).expect("decode");
    assert_eq!(&back, x);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn integers_round_trip(a in any::<u8>(), b in any::<u32>(), c in any::<u64>(),
                           d in any::<i64>(), e in any::<usize>()) {
        round_trip(&a);
        round_trip(&b);
        round_trip(&c);
        round_trip(&d);
        round_trip(&(e as u64));
    }

    /// Floats ride as IEEE-754 bit patterns: decode must reproduce the
    /// *bits*, including NaN payloads and negative zero, which `==`
    /// cannot check.
    #[test]
    fn floats_round_trip_bitwise(bits64 in any::<u64>(), bits32 in any::<u32>()) {
        let x = f64::from_bits(bits64);
        let back = f64::from_wire(&x.to_wire()).expect("decode f64");
        prop_assert_eq!(back.to_bits(), bits64);

        let y = f32::from_bits(bits32);
        let back = f32::from_wire(&y.to_wire()).expect("decode f32");
        prop_assert_eq!(back.to_bits(), bits32);
    }

    #[test]
    fn composites_round_trip(
        v in proptest::collection::vec(any::<u32>(), 0usize..40),
        opt_some in any::<bool>(),
        tag in any::<u64>(),
        flag in any::<bool>(),
    ) {
        round_trip(&v);
        round_trip(&if opt_some { Some(tag) } else { None });
        round_trip(&flag);
        round_trip(&(tag, v.clone()));
        round_trip(&(flag, tag, v.len() as u32));
        round_trip(&format!("id-{tag:x}"));
    }

    /// PageRank vertex data — the payload whose bit-exactness makes a TCP
    /// PageRank run indistinguishable from an in-proc one.
    #[test]
    fn pagerank_data_round_trips_bitwise(rank_bits in any::<u64>(), pending_bits in any::<u64>()) {
        let x = PageRankData {
            rank: f64::from_bits(rank_bits),
            pending: f64::from_bits(pending_bits),
        };
        let back = PageRankData::from_wire(&x.to_wire()).expect("decode");
        prop_assert_eq!(back.rank.to_bits(), rank_bits);
        prop_assert_eq!(back.pending.to_bits(), pending_bits);
    }

    /// Self-delimiting law: concatenated encodings decode back in order,
    /// each decode consuming exactly its own bytes.
    #[test]
    fn encodings_concatenate(
        a in proptest::collection::vec(any::<u64>(), 0usize..20),
        b in any::<u32>(),
        c_bits in any::<u64>(),
    ) {
        let c = f64::from_bits(c_bits);
        let mut buf = Vec::new();
        a.encode(&mut buf);
        b.encode(&mut buf);
        c.encode(&mut buf);

        let mut r = WireReader::new(&buf);
        prop_assert_eq!(Vec::<u64>::decode(&mut r).expect("a"), a);
        prop_assert_eq!(u32::decode(&mut r).expect("b"), b);
        prop_assert_eq!(f64::decode(&mut r).expect("c").to_bits(), c_bits);
        prop_assert!(r.finish().is_ok());
    }
}

/// Truncated input is a typed error at every prefix length, never a panic
/// or a phantom value.
#[test]
fn truncation_is_typed() {
    let full = (7u64, vec![1u32, 2, 3], Some(0.5f64)).to_wire();
    for cut in 0..full.len() {
        let err = <(u64, Vec<u32>, Option<f64>)>::from_wire(&full[..cut]);
        assert!(
            matches!(err, Err(NetError::Truncated { .. })),
            "prefix of {cut} bytes must be Truncated, got {err:?}"
        );
    }
    // ...and a trailing byte is TrailingBytes, not silently ignored.
    let mut padded = full.clone();
    padded.push(0);
    assert!(matches!(
        <(u64, Vec<u32>, Option<f64>)>::from_wire(&padded),
        Err(NetError::TrailingBytes { .. })
    ));
}

// ---------------------------------------------------------------------------
// 2. Framing under adversity
// ---------------------------------------------------------------------------

/// A reader that hands out at most 1–3 bytes per call in a fixed rotation,
/// simulating a TCP stream arriving in arbitrary small segments.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    step: usize,
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.data.len() {
            return Ok(0);
        }
        let n = (self.step % 3) + 1;
        self.step += 1;
        let n = n.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn torn_frames_reassemble_exactly() {
    // Several frames of assorted kinds and sizes, back to back — including
    // an empty payload, which is all header.
    let payloads: Vec<Vec<u8>> = vec![
        (0u32, 3u64, vec![9u32; 17]).to_wire(),
        Vec::new(),
        (1u32, 4u64, vec![0xABu32; 257]).to_wire(),
    ];
    let kinds = [FrameKind::Data, FrameKind::Shutdown, FrameKind::Data];
    let mut stream = Vec::new();
    for (p, k) in payloads.iter().zip(kinds) {
        lazygraph_net::write_frame(&mut stream, k, p).expect("write frame");
    }
    assert_eq!(
        stream.len(),
        payloads.iter().map(|p| p.len() + HEADER_LEN).sum::<usize>()
    );

    let mut src = Trickle { data: &stream, pos: 0, step: 0 };
    let mut reader = FrameReader::new();
    let mut got = Vec::new();
    loop {
        match reader.poll(&mut src) {
            Ok(Some(frame)) => got.push(frame),
            Ok(None) => unreachable!("Trickle never returns WouldBlock"),
            Err(NetError::PeerClosed) => break,
            Err(e) => panic!("unexpected frame error: {e}"),
        }
    }
    assert_eq!(got.len(), payloads.len());
    for ((frame, want), kind) in got.iter().zip(&payloads).zip(kinds) {
        assert_eq!(frame.kind, kind);
        assert_eq!(&frame.payload, want);
    }
}

#[test]
fn eof_mid_frame_is_an_error_not_a_short_frame() {
    let payload = vec![0x55u8; 64];
    let mut stream = Vec::new();
    lazygraph_net::write_frame(&mut stream, FrameKind::Data, &payload).expect("write frame");
    // Cut anywhere strictly inside the frame: header-torn or payload-torn.
    for cut in 1..stream.len() {
        let mut src = Trickle { data: &stream[..cut], pos: 0, step: 0 };
        let mut reader = FrameReader::new();
        let res = loop {
            match reader.poll(&mut src) {
                Ok(Some(f)) => break Ok(f),
                Ok(None) => continue,
                Err(e) => break Err(e),
            }
        };
        assert!(
            matches!(res, Err(NetError::PeerClosed)),
            "cut at {cut}: want PeerClosed, got {res:?}"
        );
        assert!(reader.mid_frame(), "cut at {cut}: reader must know it was mid-frame");
    }
}

// ---------------------------------------------------------------------------
// 3. Transport equivalence
// ---------------------------------------------------------------------------

fn test_graph() -> Graph {
    let g = rmat(RmatConfig::graph500(8, 6, 5));
    let mut b = GraphBuilder::new(g.num_vertices());
    b.extend(g.edges());
    b.symmetrize();
    b.randomize_weights(1.0, 9.0, 5);
    b.build()
}

fn cfg(engine: EngineKind) -> EngineConfig {
    EngineConfig::lazygraph()
        .with_engine(engine)
        .with_threads(2)
        .with_block_size(64)
}

/// `{:?}` on finite floats round-trips, so string equality on the value
/// vector is bitwise equality.
fn fingerprint<P: VertexProgram>(r: &lazygraph_engine::RunResult<P>) -> String {
    format!(
        "values={:?} iters={} sim={:?}",
        r.values, r.metrics.iterations, r.metrics.sim_time.to_bits()
    )
}

/// Threaded loopback TCP must be observationally identical to the channel
/// mesh — same values, same iteration count, same simulated time, bit for
/// bit — for every engine. Determinism across *machines* is the engines'
/// own contract (the async family is only schedule-free for idempotent
/// algebras, so they get SSSP; the BSP-shaped engines also get PageRank).
#[test]
fn threaded_tcp_matches_inproc_bitwise() {
    let g = test_graph();
    let machines = 4;
    let sssp = Sssp::new(0u32);
    let pagerank = PageRankDelta { tolerance: 1e-5 };

    let engines = [
        EngineKind::PowerGraphSync,
        EngineKind::PowerGraphAsync,
        EngineKind::LazyBlockAsync,
        EngineKind::LazyVertexAsync,
        EngineKind::PowerSwitchHybrid,
    ];
    for engine in engines {
        let base = cfg(engine);
        let tcp = base.clone().with_transport(TransportKind::Tcp);
        // The barrier-free engines are racy *across machines* — batch
        // arrival order is scheduling — so their clocks and counters are
        // schedule-dependent on any transport. Their values are still
        // bitwise for idempotent algebras (the determinism.rs contract);
        // the BSP-shaped engines get the full fingerprint.
        let bsp = matches!(
            engine,
            EngineKind::PowerGraphSync | EngineKind::LazyBlockAsync
        );

        let a = run(&g, machines, &base, &sssp).expect("in-proc sssp");
        let b = run(&g, machines, &tcp, &sssp).expect("tcp sssp");
        if bsp {
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "sssp on {} diverged across transports",
                engine.name()
            );
        } else {
            assert_eq!(
                format!("{:?}", a.values),
                format!("{:?}", b.values),
                "sssp values on {} diverged across transports",
                engine.name()
            );
        }

        // The channel mesh never serializes; TCP always does, and its wire
        // bytes are measured frames, not the cost model's estimate.
        assert_eq!(a.metrics.stats.wire_bytes_sent, 0);
        assert_eq!(a.metrics.stats.wire_frames_sent, 0);
        assert!(b.metrics.stats.wire_bytes_sent > 0, "{}", engine.name());
        assert!(b.metrics.stats.wire_frames_sent > 0, "{}", engine.name());
        assert_ne!(
            b.metrics.stats.wire_bytes_sent,
            b.metrics.stats.total_est_bytes(),
            "measured frame bytes and cost-model estimates are different \
             quantities; them agreeing would suggest one aliases the other"
        );

        if bsp {
            let a = run(&g, machines, &base, &pagerank).expect("in-proc pagerank");
            let b = run(&g, machines, &tcp, &pagerank).expect("tcp pagerank");
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "pagerank on {} diverged across transports",
                engine.name()
            );
        }
    }
}

fn worker_bin() -> &'static std::path::Path {
    std::path::Path::new(env!("CARGO_BIN_EXE_lazygraph-worker"))
}

/// Four real OS processes over loopback TCP must reproduce the in-proc
/// run bitwise: values, iterations, convergence, and simulated time.
#[test]
fn multiprocess_pagerank_matches_inproc_bitwise() {
    let g = test_graph();
    let machines = 4;
    let tolerance = 1e-5;
    let program = PageRankDelta { tolerance };

    for engine in [EngineKind::PowerGraphSync, EngineKind::LazyBlockAsync] {
        let base = cfg(engine);
        let inproc = run(&g, machines, &base, &program).expect("in-proc");
        let mp = run_multiprocess::<PageRankDelta>(
            &g,
            machines,
            &base,
            &AlgoSpec::PageRank { tolerance },
            worker_bin(),
        )
        .expect("multiprocess");

        assert_eq!(
            format!("{:?}", inproc.values),
            format!("{:?}", mp.values),
            "pagerank values diverged on {}",
            engine.name()
        );
        assert_eq!(inproc.metrics.iterations, mp.iterations, "{}", engine.name());
        assert_eq!(
            inproc.metrics.sim_time.to_bits(),
            mp.sim_time.to_bits(),
            "{}",
            engine.name()
        );
        assert!(mp.converged, "{}", engine.name());

        // Every exchange crossed a real socket; the merged snapshot must
        // show measured traffic on all four workers.
        assert!(mp.stats.wire_bytes_sent > 0);
        assert_eq!(mp.per_worker_stats.len(), machines);
        for (i, s) in mp.per_worker_stats.iter().enumerate() {
            assert!(s.wire_bytes_sent > 0, "worker {i} sent no frames");
            assert!(s.wire_bytes_recv > 0, "worker {i} received no frames");
        }
    }
}

#[test]
fn multiprocess_sssp_matches_inproc_bitwise() {
    let g = test_graph();
    let machines = 4;
    let program = Sssp::new(0u32);

    for engine in [EngineKind::PowerGraphSync, EngineKind::LazyBlockAsync] {
        let base = cfg(engine);
        let inproc = run(&g, machines, &base, &program).expect("in-proc");
        let mp = run_multiprocess::<Sssp>(
            &g,
            machines,
            &base,
            &AlgoSpec::Sssp { source: 0 },
            worker_bin(),
        )
        .expect("multiprocess");

        assert_eq!(
            format!("{:?}", inproc.values),
            format!("{:?}", mp.values),
            "sssp values diverged on {}",
            engine.name()
        );
        assert_eq!(inproc.metrics.iterations, mp.iterations, "{}", engine.name());
        assert_eq!(
            inproc.metrics.sim_time.to_bits(),
            mp.sim_time.to_bits(),
            "{}",
            engine.name()
        );
        assert!(mp.stats.wire_bytes_sent > 0);
    }
}

/// The unsupported engines fail fast with a typed error instead of
/// spawning workers that would deadlock on shared-memory termination.
#[test]
fn multiprocess_rejects_shared_memory_engines() {
    let g = test_graph();
    for engine in [
        EngineKind::PowerGraphAsync,
        EngineKind::LazyVertexAsync,
        EngineKind::PowerSwitchHybrid,
    ] {
        let err = run_multiprocess::<Sssp>(
            &g,
            2,
            &cfg(engine),
            &AlgoSpec::Sssp { source: 0 },
            worker_bin(),
        );
        assert!(
            matches!(err, Err(lazygraph::multiproc::MultiprocError::UnsupportedEngine(_))),
            "{} must be rejected up front",
            engine.name()
        );
    }
}
