//! Determinism harness for the two-level threading model: every engine,
//! at any per-machine thread count and block size, must produce
//! byte-identical vertex values — and, wherever the engine itself is
//! schedule-free, identical counters — as the sequential run.
//!
//! The BSP-shaped engines (PowerGraphSync and LazyBlockAsync, whose
//! coherency points are barriered) are deterministic end-to-end: values,
//! NetStats, and sim-time must all match bitwise at every thread count
//! and machine count. The barrier-free engines (PowerGraphAsync,
//! LazyVertexAsync) are only racy *across* machines — batch arrival order
//! is scheduling — so they get the full bitwise bar at one machine, the
//! bitwise value bar for idempotent algebras (SSSP, CC) at four machines,
//! and a tolerance bar for PageRank at four machines.

use lazygraph::prelude::*;
use lazygraph_engine::TransportKind;
use lazygraph_graph::generators::{rmat, RmatConfig};
use lazygraph_graph::GraphBuilder;

const THREADS: [usize; 3] = [1, 2, 8];
const MACHINES: [usize; 2] = [1, 4];

fn test_graph() -> Graph {
    let g = rmat(RmatConfig::graph500(9, 6, 5));
    let mut b = GraphBuilder::new(g.num_vertices());
    b.extend(g.edges());
    b.symmetrize();
    b.randomize_weights(1.0, 9.0, 5);
    b.build()
}

fn cfg(engine: EngineKind, threads: usize, bidirectional: bool) -> EngineConfig {
    EngineConfig::lazygraph()
        .with_engine(engine)
        .with_bidirectional(bidirectional)
        .with_threads(threads)
        .with_block_size(64) // small enough that every stage really chunks
}

/// Byte-faithful rendering of the final values: `{:?}` on finite floats
/// round-trips, so string equality here is bitwise equality.
fn run_fingerprint<P: VertexProgram>(
    g: &Graph,
    machines: usize,
    cfg: &EngineConfig,
    program: &P,
) -> (String, String) {
    let r = run(g, machines, cfg, program).expect("cluster run");
    let values = format!("{:?}", r.values);
    // Pool hit/miss depends on whether a recycled buffer has travelled back
    // through the return channel by acquisition time — pure cross-thread
    // timing, telemetry only. Every other counter is part of the contract.
    let mut stats = r.metrics.stats;
    stats.pool_hits = 0;
    stats.pool_misses = 0;
    // How many streamed parts land before the coherency barrier is a race
    // between compute and the wire — telemetry, not part of the contract.
    stats.drain_batches_early = 0;
    // How many deliveries coalesce into vectorized runs depends on the
    // block partitioning (a run cannot cross a block boundary), so the
    // counter varies with block_size by design — vectorization telemetry,
    // not part of the contract. Values must still match bitwise.
    stats.fold_runs = 0;
    let counters = format!(
        "iters={} coh={} sub={} a2a={} m2m={} syncs={} stats={:?} sim={:?} conv={}",
        r.metrics.iterations,
        r.metrics.coherency_points,
        r.metrics.local_subrounds,
        r.metrics.a2a_exchanges,
        r.metrics.m2m_exchanges,
        r.metrics.global_syncs(),
        stats,
        r.metrics.sim_time,
        r.metrics.converged,
    );
    (values, counters)
}

/// Runs `program` across the thread-count grid and asserts every
/// fingerprint component selected by `check_counters` matches threads=1.
fn assert_thread_invariant<P: VertexProgram>(
    g: &Graph,
    engine: EngineKind,
    machines: usize,
    bidirectional: bool,
    program: &P,
    check_counters: bool,
) {
    let baseline = run_fingerprint(g, machines, &cfg(engine, 1, bidirectional), program);
    for threads in THREADS {
        let got = run_fingerprint(g, machines, &cfg(engine, threads, bidirectional), program);
        assert_eq!(
            got.0, baseline.0,
            "{engine:?}/{} values diverged at threads={threads}, machines={machines}",
            program.name()
        );
        if check_counters {
            assert_eq!(
                got.1, baseline.1,
                "{engine:?}/{} counters diverged at threads={threads}, machines={machines}",
                program.name()
            );
        }
    }
}

#[test]
fn bsp_engines_bitwise_identical_across_threads_and_machines() {
    let g = test_graph();
    for engine in [EngineKind::PowerGraphSync, EngineKind::LazyBlockAsync] {
        for machines in MACHINES {
            assert_thread_invariant(&g, engine, machines, false, &Sssp::new(0u32), true);
            assert_thread_invariant(&g, engine, machines, false, &PageRankDelta::default(), true);
            assert_thread_invariant(&g, engine, machines, true, &ConnectedComponents, true);
        }
    }
}

#[test]
fn async_engines_bitwise_identical_at_one_machine() {
    let g = test_graph();
    for engine in [EngineKind::PowerGraphAsync, EngineKind::LazyVertexAsync] {
        assert_thread_invariant(&g, engine, 1, false, &Sssp::new(0u32), true);
        assert_thread_invariant(&g, engine, 1, false, &PageRankDelta::default(), true);
        assert_thread_invariant(&g, engine, 1, true, &ConnectedComponents, true);
    }
}

#[test]
fn async_engines_exact_values_for_idempotent_algebras_across_machines() {
    // Min-based algebras reach the same fixpoint no matter the arrival
    // order, so even the barrier-free engines owe bitwise values here
    // (counters legitimately vary with cross-machine timing).
    let g = test_graph();
    for engine in [EngineKind::PowerGraphAsync, EngineKind::LazyVertexAsync] {
        assert_thread_invariant(&g, engine, 4, false, &Sssp::new(0u32), false);
        assert_thread_invariant(&g, engine, 4, true, &ConnectedComponents, false);
    }
}

#[test]
fn async_pagerank_across_machines_stays_within_tolerance() {
    // PageRank's ⊕ is a float sum and the engine stops once residual
    // deltas drop under the program tolerance, so two arrival orders can
    // legitimately land anywhere within that residual of each other: the
    // bar at machines=4 is a tolerance-derived band, not bitwise.
    let g = test_graph();
    for engine in [EngineKind::PowerGraphAsync, EngineKind::LazyVertexAsync] {
        let program = PageRankDelta::default();
        let band = 10.0 * program.tolerance;
        let base = run(&g, 4, &cfg(engine, 1, false), &program).expect("cluster run").values;
        for threads in [2, 8] {
            let got = run(&g, 4, &cfg(engine, threads, false), &program).expect("cluster run").values;
            for (v, (a, b)) in base.iter().zip(&got).enumerate() {
                assert!(
                    (a.rank - b.rank).abs() <= band * a.rank.abs().max(1.0),
                    "{engine:?} pagerank vertex {v}: {} vs {} at threads={threads}",
                    a.rank,
                    b.rank
                );
            }
        }
    }
}

#[test]
fn block_size_never_changes_results() {
    let g = test_graph();
    let program = PageRankDelta::default();
    let baseline = run_fingerprint(
        &g,
        4,
        &cfg(EngineKind::LazyBlockAsync, 4, false),
        &program,
    );
    for block_size in [1usize, 7, 509, 1 << 20] {
        let c = cfg(EngineKind::LazyBlockAsync, 4, false).with_block_size(block_size);
        let got = run_fingerprint(&g, 4, &c, &program);
        assert_eq!(
            (got.0, got.1),
            (baseline.0.clone(), baseline.1.clone()),
            "block_size={block_size} changed the run"
        );
    }
}

#[test]
fn exchange_fast_path_matches_naive_path_bitwise() {
    // The combined/pooled/parallel-routed exchange path is a pure perf
    // optimisation: for every gated engine it must produce bitwise-identical
    // vertex values to the naive serial path at every thread and machine
    // count. Counters legitimately differ (that is the point — fewer wire
    // items), so only values are compared.
    let g = test_graph();
    for engine in [EngineKind::PowerGraphSync, EngineKind::LazyBlockAsync] {
        for machines in [1usize, 2, 4] {
            for threads in [1usize, 2, 4, 8] {
                let fast = cfg(engine, threads, false);
                let naive = fast.clone().with_exchange_fast(false);
                let pr_fast = run(&g, machines, &fast, &PageRankDelta::default())
                    .expect("cluster run");
                let pr_naive = run(&g, machines, &naive, &PageRankDelta::default())
                    .expect("cluster run");
                assert_eq!(
                    format!("{:?}", pr_fast.values),
                    format!("{:?}", pr_naive.values),
                    "{engine:?}/pagerank fast!=naive at threads={threads}, machines={machines}"
                );
                let sp_fast = run(&g, machines, &fast, &Sssp::new(0u32)).expect("cluster run");
                let sp_naive = run(&g, machines, &naive, &Sssp::new(0u32)).expect("cluster run");
                assert_eq!(
                    format!("{:?}", sp_fast.values),
                    format!("{:?}", sp_naive.values),
                    "{engine:?}/sssp fast!=naive at threads={threads}, machines={machines}"
                );
            }
        }
    }
}

#[test]
fn pipelined_path_matches_serialized_bitwise() {
    // The pipelined exchange (streamed sends + eager inbound drain,
    // DESIGN.md §11) is a pure overlap optimisation: its ⊕-commits replay
    // in the serialized path's (sender, part) order, so vertex values AND
    // simulated time must match the serialized fast path bitwise on every
    // transport and machine count. Wire-level counters legitimately differ
    // (more, smaller frames), so they are not compared.
    let g = test_graph();
    for engine in [EngineKind::PowerGraphSync, EngineKind::LazyBlockAsync] {
        for transport in [TransportKind::InProc, TransportKind::Tcp] {
            for machines in [1usize, 2, 4] {
                let serial = cfg(engine, 4, false).with_transport(transport);
                let piped = serial.clone().with_pipeline(true);
                let pr_serial =
                    run(&g, machines, &serial, &PageRankDelta::default()).expect("cluster run");
                let pr_piped =
                    run(&g, machines, &piped, &PageRankDelta::default()).expect("cluster run");
                assert_eq!(
                    format!("{:?}", pr_serial.values),
                    format!("{:?}", pr_piped.values),
                    "{engine:?}/pagerank pipelined!=serialized on {transport:?}, machines={machines}"
                );
                assert_eq!(
                    pr_serial.metrics.sim_time.to_bits(),
                    pr_piped.metrics.sim_time.to_bits(),
                    "{engine:?}/pagerank sim_time diverged on {transport:?}, machines={machines}"
                );
                let sp_serial = run(&g, machines, &serial, &Sssp::new(0u32)).expect("cluster run");
                let sp_piped = run(&g, machines, &piped, &Sssp::new(0u32)).expect("cluster run");
                assert_eq!(
                    format!("{:?}", sp_serial.values),
                    format!("{:?}", sp_piped.values),
                    "{engine:?}/sssp pipelined!=serialized on {transport:?}, machines={machines}"
                );
                assert_eq!(
                    sp_serial.metrics.sim_time.to_bits(),
                    sp_piped.metrics.sim_time.to_bits(),
                    "{engine:?}/sssp sim_time diverged on {transport:?}, machines={machines}"
                );
            }
        }
    }
}

#[test]
fn adaptive_part_sizing_never_changes_results() {
    // Adaptive pipeline sizing (DESIGN.md §14) only moves *part
    // boundaries*, and part boundaries are proven value- and
    // sim_time-invariant by `pipelined_path_matches_serialized_bitwise`
    // (which already runs with the adaptive default). This pins the
    // stronger explicit triangle: adaptive-on ≡ adaptive-off ≡
    // serialized, bitwise, on the wire transport where adaptation
    // actually engages.
    let g = test_graph();
    for engine in [EngineKind::PowerGraphSync, EngineKind::LazyBlockAsync] {
        for machines in [2usize, 4] {
            let serial = cfg(engine, 4, false).with_transport(TransportKind::Tcp);
            let fixed = serial
                .clone()
                .with_pipeline(true)
                .with_adaptive_parts(false);
            let adaptive = serial.clone().with_pipeline(true);
            let r_serial =
                run(&g, machines, &serial, &PageRankDelta::default()).expect("cluster run");
            let r_fixed =
                run(&g, machines, &fixed, &PageRankDelta::default()).expect("cluster run");
            let r_adaptive =
                run(&g, machines, &adaptive, &PageRankDelta::default()).expect("cluster run");
            let vals = |r: &RunResult<PageRankDelta>| format!("{:?}", r.values);
            assert_eq!(
                vals(&r_adaptive),
                vals(&r_fixed),
                "{engine:?} adaptive changed values at machines={machines}"
            );
            assert_eq!(
                vals(&r_adaptive),
                vals(&r_serial),
                "{engine:?} pipelined diverged from serialized at machines={machines}"
            );
            assert_eq!(
                r_adaptive.metrics.sim_time.to_bits(),
                r_fixed.metrics.sim_time.to_bits(),
                "{engine:?} adaptive changed sim_time at machines={machines}"
            );
        }
    }
}

#[test]
fn lazy_vertex_pipelined_reaches_same_fixpoint() {
    // The barrier-free engine has no round structure to replay, so
    // pipelining legitimately changes batch boundaries and float-fold
    // order; only min-algebra programs (unique fixpoint) owe bitwise
    // values here.
    let g = test_graph();
    for machines in [1usize, 4] {
        let serial = cfg(EngineKind::LazyVertexAsync, 4, false);
        let piped = serial.clone().with_pipeline(true);
        let a = run(&g, machines, &serial, &Sssp::new(0u32)).expect("cluster run");
        let b = run(&g, machines, &piped, &Sssp::new(0u32)).expect("cluster run");
        assert_eq!(
            format!("{:?}", a.values),
            format!("{:?}", b.values),
            "lazy-vertex/sssp pipelined fixpoint diverged at machines={machines}"
        );
    }
}

#[test]
fn delta_engine_converges_to_dense_oracle() {
    // The bucket scheduler only reorders and defers work; parked
    // sub-tolerance mass is the same error model the dense single-machine
    // reference (`oracle::delta_dense_fixpoint`) applies, so the scheduled
    // 4-machine run must land within a tolerance-derived band of it.
    let g = test_graph();
    let pr = PageRankDelta::default();
    let (oracle_vals, _epochs, oracle_converged) =
        lazygraph_engine::oracle::delta_dense_fixpoint(&g, &pr, pr.tolerance, 100_000);
    assert!(oracle_converged, "dense delta oracle must converge");
    let r = run(&g, 4, &cfg(EngineKind::DeltaAccum, 4, false), &pr).expect("cluster run");
    assert!(r.metrics.converged, "scheduled delta engine must converge");
    let band = 20.0 * pr.tolerance;
    for (v, (got, want)) in r.values.iter().zip(&oracle_vals).enumerate() {
        assert!(
            (got.rank - want.rank).abs() <= band * want.rank.abs().max(1.0),
            "pagerank vertex {v}: scheduled {} vs oracle {}",
            got.rank,
            want.rank
        );
    }

    let sssp = Sssp::new(0u32);
    let (oracle_vals, _epochs, oracle_converged) =
        lazygraph_engine::oracle::delta_dense_fixpoint(&g, &sssp, 1e-3, 100_000);
    assert!(oracle_converged);
    let r = run(&g, 4, &cfg(EngineKind::DeltaAccum, 4, false), &sssp).expect("cluster run");
    assert!(r.metrics.converged);
    for (v, (got, want)) in r.values.iter().zip(&oracle_vals).enumerate() {
        if got.is_infinite() && want.is_infinite() {
            continue; // both unreachable
        }
        assert!(
            (got - want).abs() <= 0.05,
            "sssp vertex {v}: scheduled {got} vs oracle {want}"
        );
    }
}

#[test]
fn delta_engine_bitwise_deterministic_across_transports_and_threads() {
    // Within a machine count the epoch plan is a pure function of state,
    // so values must be bitwise identical on every transport and thread
    // count; the full counter fingerprint must also hold thread-invariant
    // on the in-proc transport (TCP measures real frame bytes, which are
    // part of the wire contract but not the thread contract).
    let g = test_graph();
    let program = PageRankDelta::default();
    for machines in [1usize, 2, 4] {
        let baseline = run_fingerprint(
            &g,
            machines,
            &cfg(EngineKind::DeltaAccum, 1, false),
            &program,
        );
        for transport in [TransportKind::InProc, TransportKind::Tcp] {
            for threads in THREADS {
                let c = cfg(EngineKind::DeltaAccum, threads, false).with_transport(transport);
                let got = run_fingerprint(&g, machines, &c, &program);
                assert_eq!(
                    got.0, baseline.0,
                    "delta values diverged on {transport:?}, threads={threads}, machines={machines}"
                );
                if transport == TransportKind::InProc {
                    assert_eq!(
                        got.1, baseline.1,
                        "delta counters diverged at threads={threads}, machines={machines}"
                    );
                }
            }
        }
        // Same config twice: no hidden global state in the scheduler.
        let c = cfg(EngineKind::DeltaAccum, 8, false);
        let a = run_fingerprint(&g, machines, &c, &program);
        let b = run_fingerprint(&g, machines, &c, &program);
        assert_eq!(a, b, "delta engine not reproducible at machines={machines}");
    }
}

#[test]
fn delta_engine_skips_work_the_lazy_engine_processes() {
    // The point of the scheduler: sub-tolerance vertices park instead of
    // burning applies. On the PageRank workload the delta engine must
    // record skipped vertices and fewer applies than lazy-block.
    let g = test_graph();
    let program = PageRankDelta::default();
    let delta = run(&g, 4, &cfg(EngineKind::DeltaAccum, 4, false), &program)
        .expect("cluster run");
    let lazy = run(&g, 4, &cfg(EngineKind::LazyBlockAsync, 4, false), &program)
        .expect("cluster run");
    assert!(
        delta.metrics.stats.delta_skipped_vertices > 0,
        "scheduler never parked a vertex"
    );
    assert!(delta.metrics.stats.sched_epochs > 0);
    assert!(delta.metrics.stats.bucket_high_water > 0);
    assert!(
        delta.metrics.stats.applies < lazy.metrics.stats.applies,
        "delta applies {} not below lazy applies {}",
        delta.metrics.stats.applies,
        lazy.metrics.stats.applies
    );
}

// ---------------------------------------------------------------------------
// Skew-aware hub fan-out + deterministic live migration (DESIGN.md §16)
// ---------------------------------------------------------------------------

/// High-skew R-MAT (a = 0.7): a handful of hubs own a large share of all
/// edges, and the adversarial partition drops every hub shard on machine
/// 0 — the stress input the rebalancer exists for.
fn skew_graph() -> Graph {
    let g = rmat(RmatConfig::skewed(9, 8, 9));
    let mut b = GraphBuilder::new(g.num_vertices());
    b.extend(g.edges());
    b.symmetrize();
    b.randomize_weights(1.0, 9.0, 5);
    b.build()
}

/// Adversarial placement + live migration every 2 barriers. Hub fan-out
/// stays *off* here on purpose: fanning the hubs out would balance the
/// load at partition time and the rebalance trigger would never fire —
/// these tests exercise the migration path, so the static placement must
/// stay skewed. Fan-out determinism is pinned separately below.
fn skew_cfg(threads: usize) -> EngineConfig {
    EngineConfig::lazygraph()
        .with_engine(EngineKind::LazyBlockAsync)
        .with_threads(threads)
        .with_block_size(64)
        .with_partition(PartitionStrategy::AdversarialHubs)
        .with_rebalance(RebalanceConfig::enabled(2, 1200, 16))
}

#[test]
fn migrated_runs_bitwise_identical_across_transports_and_threads() {
    // Live migration is an identical structural patch stream applied by
    // every machine (DESIGN.md §16): for a fixed machine count the values
    // AND the full counter fingerprint must stay bitwise identical on
    // every transport and thread count. TCP runs owe the same values but
    // not the same counters (wire bytes are measured frame bytes, part of
    // the wire contract rather than the thread contract).
    let g = skew_graph();
    let program = Sssp::new(0u32);
    for machines in [1usize, 2, 4] {
        let baseline = run_fingerprint(&g, machines, &skew_cfg(1), &program);
        for transport in [TransportKind::InProc, TransportKind::Tcp] {
            for threads in THREADS {
                let c = skew_cfg(threads).with_transport(transport);
                let got = run_fingerprint(&g, machines, &c, &program);
                assert_eq!(
                    got.0, baseline.0,
                    "migrated values diverged on {transport:?}, threads={threads}, \
                     machines={machines}"
                );
                if transport == TransportKind::InProc {
                    assert_eq!(
                        got.1, baseline.1,
                        "migrated counters diverged at threads={threads}, machines={machines}"
                    );
                }
            }
        }
    }
    // PageRank exercises the float ⊕ path through a migrated topology:
    // bitwise across both transports at the largest machine count.
    let pr = PageRankDelta::default();
    let base = run_fingerprint(&g, 4, &skew_cfg(1), &pr);
    for transport in [TransportKind::InProc, TransportKind::Tcp] {
        let got = run_fingerprint(&g, 4, &skew_cfg(4).with_transport(transport), &pr);
        assert_eq!(
            got.0, base.0,
            "migrated pagerank values diverged on {transport:?}"
        );
    }
}

#[test]
fn migration_actually_fires_and_preserves_min_algebra_values() {
    // Two bars at once. Anti-vacuity: with every hub adversarially packed
    // onto machine 0, the rebalance trigger must actually fire and move
    // vertices — otherwise the matrix test above passes without ever
    // exercising migration. Value-neutrality: migration only moves
    // ownership, never work, so an idempotent min-algebra program must
    // land on the same bits with the rebalancer on or off.
    let g = skew_graph();
    let program = Sssp::new(0u32);
    for machines in [2usize, 4] {
        let on = run(&g, machines, &skew_cfg(4), &program).expect("cluster run");
        assert!(
            on.metrics.stats.rebalance_checks > 0,
            "machines={machines}: rebalance checks never ran"
        );
        assert!(
            on.metrics.stats.migrated_vertices > 0,
            "machines={machines}: adversarial hub placement triggered no migration — \
             the matrix test is vacuous"
        );
        let off_cfg = skew_cfg(4).with_rebalance(RebalanceConfig::DISABLED);
        let off = run(&g, machines, &off_cfg, &program).expect("cluster run");
        assert_eq!(
            format!("{:?}", on.values),
            format!("{:?}", off.values),
            "machines={machines}: live migration changed SSSP values"
        );
    }
}

#[test]
fn hub_fanout_bitwise_deterministic_and_value_neutral() {
    // Hub fan-out is a partition-time pass: replicas of a split hub are
    // ordinary mirrors, so (a) a fanned-out run must be bitwise identical
    // across transports and thread counts, and (b) for a min-algebra
    // program the placement cannot change the values at all.
    let g = skew_graph();
    let program = Sssp::new(0u32);
    let fan = |threads: usize| {
        EngineConfig::lazygraph()
            .with_engine(EngineKind::LazyBlockAsync)
            .with_threads(threads)
            .with_block_size(64)
            .with_partition(PartitionStrategy::AdversarialHubs)
            .with_hub_fanout(HubFanoutConfig::all_machines())
    };
    let baseline = run_fingerprint(&g, 4, &fan(1), &program);
    for transport in [TransportKind::InProc, TransportKind::Tcp] {
        for threads in THREADS {
            let got = run_fingerprint(&g, 4, &fan(threads).with_transport(transport), &program);
            assert_eq!(
                got.0, baseline.0,
                "fanned-out values diverged on {transport:?}, threads={threads}"
            );
            if transport == TransportKind::InProc {
                assert_eq!(
                    got.1, baseline.1,
                    "fanned-out counters diverged at threads={threads}"
                );
            }
        }
    }
    // Placement neutrality: same bits as the unfanned static partition.
    let plain = fan(4).with_hub_fanout(HubFanoutConfig::default());
    let off = run(&g, 4, &plain, &program).expect("cluster run");
    let on = run(&g, 4, &fan(4), &program).expect("cluster run");
    assert_eq!(
        format!("{:?}", on.values),
        format!("{:?}", off.values),
        "hub fan-out changed SSSP values"
    );
}

#[test]
fn repeated_runs_are_reproducible() {
    // Same config twice — catches hidden global state (hash seeds, pool
    // scheduling) leaking into results even when thread counts agree.
    let g = test_graph();
    for engine in [EngineKind::PowerGraphSync, EngineKind::LazyBlockAsync] {
        let c = cfg(engine, 8, false);
        let a = run_fingerprint(&g, 4, &c, &PageRankDelta::default());
        let b = run_fingerprint(&g, 4, &c, &PageRankDelta::default());
        assert_eq!(a, b, "{engine:?} not reproducible run-to-run");
    }
}
