//! Integration tests of the PowerSwitch-style hybrid engine (extension):
//! correctness against references, switch behaviour, and the regime where
//! the switch pays.

use lazygraph::prelude::*;
use lazygraph_algorithms::reference;
use lazygraph_graph::generators::{grid2d, rmat, Grid2dConfig, RmatConfig};
use lazygraph_graph::VertexId;

fn road() -> Graph {
    let base = grid2d(Grid2dConfig::road(40, 40, 71));
    let mut b = GraphBuilder::new(base.num_vertices());
    b.extend(base.edges());
    b.symmetrize();
    b.randomize_weights(1.0, 12.0, 71);
    b.build()
}

#[test]
fn hybrid_sssp_matches_dijkstra() {
    let g = road();
    let expected = reference::dijkstra(&g, VertexId(0));
    let r = run(&g, 6, &EngineConfig::powerswitch_hybrid(), &Sssp::new(0u32)).expect("cluster run");
    assert_eq!(r.values, expected);
    assert!(r.metrics.converged);
}

#[test]
fn hybrid_cc_and_kcore_match_references() {
    let base = rmat(RmatConfig::graph500(9, 6, 72));
    let mut b = GraphBuilder::new(base.num_vertices());
    b.extend(base.edges());
    b.symmetrize();
    let g = b.build();
    let cfg = EngineConfig::powerswitch_hybrid().with_bidirectional(true);
    let cc = run(&g, 5, &cfg, &ConnectedComponents).expect("cluster run");
    assert_eq!(cc.values, reference::connected_components(&g));
    let kc = run(&g, 5, &cfg, &KCore::new(4)).expect("cluster run");
    assert_eq!(kc.values, reference::kcore_peeling(&g, 4));
}

#[test]
fn hybrid_switches_on_sparse_frontiers() {
    // Road SSSP has a thin wavefront: the hybrid should run far fewer BSP
    // supersteps than pure Sync (it abandons BSP once the frontier falls
    // below the threshold).
    let g = road();
    let sync = run(&g, 6, &EngineConfig::powergraph_sync(), &Sssp::new(0u32)).expect("cluster run");
    let hybrid = run(&g, 6, &EngineConfig::powerswitch_hybrid(), &Sssp::new(0u32)).expect("cluster run");
    assert!(
        hybrid.metrics.iterations < sync.metrics.iterations / 2,
        "hybrid stayed in BSP too long: {} vs sync {}",
        hybrid.metrics.iterations,
        sync.metrics.iterations
    );
    assert!(
        hybrid.metrics.global_syncs() < sync.metrics.global_syncs(),
        "hybrid must pay fewer barriers"
    );
    assert!(
        hybrid.metrics.sim_time < sync.metrics.sim_time,
        "the switch must pay on sparse frontiers: hybrid {:.3}s vs sync {:.3}s",
        hybrid.metrics.sim_time,
        sync.metrics.sim_time
    );
}

#[test]
fn hybrid_threshold_zero_degenerates_to_sync() {
    let g = road();
    let mut cfg = EngineConfig::powerswitch_hybrid();
    cfg.hybrid_switch_threshold = 0.0; // never switch
    let hybrid = run(&g, 4, &cfg, &Sssp::new(0u32)).expect("cluster run");
    let sync = run(&g, 4, &EngineConfig::powergraph_sync(), &Sssp::new(0u32)).expect("cluster run");
    assert_eq!(hybrid.values, sync.values);
    assert_eq!(hybrid.metrics.iterations, sync.metrics.iterations);
}

#[test]
fn hybrid_pagerank_near_power_iteration() {
    let g = rmat(RmatConfig::weblike(9, 8, 73));
    let power = reference::pagerank_power(&g, 150);
    let r = run(
        &g,
        4,
        &EngineConfig::powerswitch_hybrid(),
        &PageRankDelta { tolerance: 1e-5 },
    ).expect("cluster run");
    for (v, (got, want)) in r.values.iter().zip(&power).enumerate() {
        assert!(
            (got.rank - want).abs() < 0.01 * want.max(1.0),
            "vertex {v}: {} vs {}",
            got.rank,
            want
        );
    }
}
