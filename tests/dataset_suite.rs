//! Dataset-suite integration tests: the Table-1 analogues must reproduce
//! the structural properties every downstream figure depends on.

use lazygraph::prelude::*;
use lazygraph_graph::{graph_stats, Dataset, GraphClass};
use lazygraph_partition::{partition_graph, SplitterConfig};

const SCALE: f64 = 0.08;
const P: usize = 48;

fn lambda(ds: Dataset) -> f64 {
    let g = ds.build(SCALE);
    partition_graph(
        &g,
        P,
        PartitionStrategy::Coordinated,
        &SplitterConfig::disabled(),
        false,
    )
    .lambda()
}

#[test]
fn lambda_ordering_matches_paper_classes() {
    // §5.3: road-class graphs have the lowest λ, enwiki the highest.
    let road = lambda(Dataset::RoadUsaLike).max(lambda(Dataset::RoadNetCaLike));
    let enwiki = lambda(Dataset::EnwikiLike);
    let twitter = lambda(Dataset::TwitterLike);
    let google = lambda(Dataset::WebGoogleLike);
    assert!(road < twitter, "road λ {road} must be below twitter λ {twitter}");
    assert!(google < twitter, "web-Google λ {google} must be below twitter λ {twitter}");
    assert!(
        enwiki > twitter * 0.9,
        "enwiki λ {enwiki} must be at the top (twitter {twitter})"
    );
}

#[test]
fn ev_ratio_splits_locality_classes() {
    // The adaptive interval model's E/V ≤ 10 split must separate road from
    // the dense web/social graphs on the *evaluation* (symmetrised) form.
    for ds in [Dataset::RoadUsaLike, Dataset::RoadNetCaLike] {
        let g = ds.build_symmetric(SCALE);
        assert!(g.ev_ratio() < 10.0, "{}: E/V {}", ds.name(), g.ev_ratio());
    }
    for ds in [Dataset::TwitterLike, Dataset::LiveJournalLike, Dataset::EnwikiLike] {
        let g = ds.build_symmetric(SCALE);
        assert!(g.ev_ratio() > 10.0, "{}: E/V {}", ds.name(), g.ev_ratio());
    }
}

#[test]
fn degree_skew_matches_classes() {
    for ds in Dataset::all() {
        let stats = graph_stats(&ds.build(SCALE));
        match ds.class() {
            GraphClass::Road => assert!(
                stats.max_out_degree <= 16,
                "{}: road graphs must not have hubs ({})",
                ds.name(),
                stats.max_out_degree
            ),
            GraphClass::Social | GraphClass::Web => assert!(
                stats.max_out_degree as f64 > 4.0 * stats.avg_degree,
                "{}: expected skew (max {}, avg {:.1})",
                ds.name(),
                stats.max_out_degree,
                stats.avg_degree
            ),
        }
    }
}

#[test]
fn datasets_are_reproducible() {
    for ds in Dataset::all() {
        let a = ds.build(SCALE);
        let b = ds.build(SCALE);
        assert_eq!(a.num_vertices(), b.num_vertices(), "{}", ds.name());
        assert_eq!(a.num_edges(), b.num_edges(), "{}", ds.name());
        let ea: Vec<_> = a.edges().map(|e| (e.src, e.dst)).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.src, e.dst)).collect();
        assert_eq!(ea, eb, "{}", ds.name());
    }
}

#[test]
fn symmetric_form_is_weighted_and_symmetric() {
    for ds in Dataset::all() {
        let g = ds.build_symmetric(0.04);
        assert!(g.is_symmetric(), "{}", ds.name());
        assert!(
            g.edges().all(|e| (1.0..64.0).contains(&e.weight)),
            "{}: weights out of band",
            ds.name()
        );
    }
}

#[test]
fn road_diameter_is_large() {
    // The road class's huge diameter is what makes Sync pay hundreds of
    // supersteps — check the BFS eccentricity from a corner is lattice-like.
    let g = Dataset::RoadNetCaLike.build_symmetric(SCALE);
    let levels = lazygraph_algorithms::reference::bfs_levels(&g, VertexId(0));
    let ecc = levels.iter().filter(|&&l| l != u32::MAX).max().copied().unwrap();
    let side = (g.num_vertices() as f64).sqrt();
    assert!(
        (ecc as f64) > 0.5 * side,
        "road eccentricity {ecc} too small for side {side}"
    );
}
