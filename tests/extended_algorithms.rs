//! Integration coverage for the extension algorithms (widest path,
//! personalised PageRank, multi-source BFS) across the distributed engines
//! — each exercises a different algebra corner: max–min, seeded additive,
//! and bitwise-OR.

use lazygraph::prelude::*;
use lazygraph_algorithms::multi_bfs::MultiSourceBfs;
use lazygraph_algorithms::ppr::{ppr_power, PersonalizedPageRank};
use lazygraph_algorithms::reference;
use lazygraph_algorithms::widest_path::{widest_path_reference, WidestPath};
use lazygraph_graph::generators::{erdos_renyi, rmat, small_world, RmatConfig};
use lazygraph_graph::VertexId;

fn engines() -> [EngineKind; 4] {
    [
        EngineKind::PowerGraphSync,
        EngineKind::PowerGraphAsync,
        EngineKind::LazyBlockAsync,
        EngineKind::LazyVertexAsync,
    ]
}

#[test]
fn widest_path_all_engines_match_reference() {
    let base = rmat(RmatConfig::weblike(9, 6, 41));
    let mut b = GraphBuilder::new(base.num_vertices());
    b.extend(base.edges());
    b.randomize_weights(1.0, 50.0, 41);
    let g = b.build();
    let expected = widest_path_reference(&g, VertexId(0));
    for engine in engines() {
        let cfg = EngineConfig::lazygraph().with_engine(engine);
        let result = run(&g, 5, &cfg, &WidestPath::new(0u32)).expect("cluster run");
        assert_eq!(result.values, expected, "{engine:?} diverged");
    }
}

#[test]
fn multi_bfs_all_engines_match_reference() {
    let g = small_world(800, 3, 0.05, 42);
    let seeds = MultiSourceBfs::spread_seeds(g.num_vertices(), 12, 7);
    let program = MultiSourceBfs::new(seeds.clone());
    let expected = reference::run_sequential(&g, &program);
    for engine in engines() {
        let cfg = EngineConfig::lazygraph().with_engine(engine);
        let result = run(&g, 6, &cfg, &program).expect("cluster run");
        assert_eq!(result.values, expected, "{engine:?} diverged");
    }
}

#[test]
fn ppr_engines_near_power_iteration() {
    let g = erdos_renyi(250, 1800, 43);
    let seed = VertexId(11);
    let program = PersonalizedPageRank {
        seed,
        tolerance: 1e-7,
    };
    let power = ppr_power(&g, seed, 150);
    for engine in [EngineKind::PowerGraphSync, EngineKind::LazyBlockAsync] {
        let cfg = EngineConfig::lazygraph().with_engine(engine);
        let result = run(&g, 4, &cfg, &program).expect("cluster run");
        for (v, (got, want)) in result.values.iter().zip(&power).enumerate() {
            assert!(
                (got.rank - want).abs() < 1e-2 * want.max(0.1),
                "{engine:?} vertex {v}: {} vs {}",
                got.rank,
                want
            );
        }
    }
}

#[test]
fn suppression_off_matches_suppression_on() {
    // The delta-suppression optimisation must not change results for
    // exact (idempotent) algebras.
    let base = rmat(RmatConfig::graph500(9, 7, 44));
    let mut b = GraphBuilder::new(base.num_vertices());
    b.extend(base.edges());
    b.symmetrize();
    b.randomize_weights(1.0, 20.0, 44);
    let g = b.build();
    let mut on = EngineConfig::lazygraph();
    on.delta_suppression = true;
    let mut off = EngineConfig::lazygraph();
    off.delta_suppression = false;
    let r_on = run(&g, 6, &on, &Sssp::new(0u32)).expect("cluster run");
    let r_off = run(&g, 6, &off, &Sssp::new(0u32)).expect("cluster run");
    assert_eq!(r_on.values, r_off.values);
    assert!(
        r_on.metrics.traffic_bytes() <= r_off.metrics.traffic_bytes(),
        "suppression must not increase traffic: {} vs {}",
        r_on.metrics.traffic_bytes(),
        r_off.metrics.traffic_bytes()
    );
}

#[test]
fn history_recording_round_trip() {
    let g = small_world(600, 3, 0.1, 45);
    let mut cfg = EngineConfig::lazygraph();
    cfg.record_history = true;
    let r = run(&g, 4, &cfg, &ConnectedComponents).expect("cluster run");
    let h = &r.metrics.history;
    assert_eq!(h.len() as u64, r.metrics.coherency_points);
    assert!(!h[0].lazy_on, "first iteration is always eager");
    assert_eq!(h.last().unwrap().pending, 0, "last round must be quiescent");
    // Simulated time is monotone across rounds.
    for w in h.windows(2) {
        assert!(w[0].sim_time <= w[1].sim_time);
        assert_eq!(w[0].iteration + 1, w[1].iteration);
    }
    // Sync engine histories too.
    let mut cfg = EngineConfig::powergraph_sync();
    cfg.record_history = true;
    let r = run(&g, 4, &cfg, &ConnectedComponents).expect("cluster run");
    assert_eq!(r.metrics.history.len() as u64, r.metrics.iterations);
}
