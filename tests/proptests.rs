//! Property-based tests (proptest): partitioning invariants and the §3.5
//! equivalence claim — lazy coherency ≡ eager coherency ≡ sequential
//! semantics — over randomly generated graphs, weights, partitionings, and
//! machine counts.

use proptest::prelude::*;

use lazygraph::prelude::*;
use lazygraph_algorithms::reference;
use lazygraph_engine::IntervalPolicy;
use lazygraph_graph::VertexId;
use lazygraph_engine::parallel::{ParallelConfig, ParallelCtx};
use lazygraph_engine::state::{InitMessages, MachineState};
use lazygraph_partition::{
    build_distributed, partition_graph, plan_split, validate_distributed, SplitterConfig,
};

/// Strategy: a random directed graph as (num_vertices, edge list).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (8usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 1..300);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32)], symmetric: bool, seed: u64) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &(s, d) in edges {
        b.add_edge(s, d);
    }
    b.remove_self_loops();
    if symmetric {
        b.symmetrize();
    } else {
        b.dedup();
    }
    b.randomize_weights(1.0, 9.0, seed);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy × machine count yields a structurally valid
    /// distributed graph: every one-edge stored exactly once, parallel
    /// edges on exactly their dispatch set, one master per vertex, mirror
    /// lists consistent.
    #[test]
    fn distributed_graph_invariants(
        (n, edges) in arb_graph(),
        machines in 1usize..9,
        strategy_idx in 0usize..4,
        bidirectional in any::<bool>(),
        split in any::<bool>(),
    ) {
        let g = build(n, &edges, false, 7);
        let strategy = PartitionStrategy::all()[strategy_idx];
        let assignment = strategy.assign(&g, machines);
        prop_assert_eq!(assignment.len(), g.num_edges());
        let cfg = if split {
            SplitterConfig { t_extra: 0.001, max_fraction: 0.3, ..Default::default() }
        } else {
            SplitterConfig::disabled()
        };
        let plan = plan_split(&g, machines, &cfg);
        let dg = build_distributed(&g, &assignment, machines, &plan, bidirectional);
        prop_assert!(validate_distributed(&dg, &g, &assignment, &plan, bidirectional).is_ok());
        prop_assert!(dg.lambda() >= 1.0 - 1e-9);
        prop_assert!(dg.lambda() <= machines as f64 + 1e-9);
    }

    /// SSSP: every engine on every partitioning equals Dijkstra exactly.
    #[test]
    fn sssp_equivalence(
        (n, edges) in arb_graph(),
        machines in 1usize..7,
        strategy_idx in 0usize..4,
        engine_idx in 0usize..4,
    ) {
        let g = build(n, &edges, true, 11);
        let source = VertexId(0);
        let expected = reference::dijkstra(&g, source);
        let engine = [
            EngineKind::PowerGraphSync,
            EngineKind::PowerGraphAsync,
            EngineKind::LazyBlockAsync,
            EngineKind::LazyVertexAsync,
        ][engine_idx];
        let cfg = EngineConfig::lazygraph()
            .with_engine(engine)
            .with_partition(PartitionStrategy::all()[strategy_idx]);
        let result = run(&g, machines, &cfg, &Sssp::new(source)).expect("cluster run");
        prop_assert_eq!(result.values, expected);
    }

    /// k-core (additive, non-idempotent algebra — the hard case for the
    /// Inverse-based mirrors-to-master coherency): lazy equals peeling.
    #[test]
    fn kcore_equivalence(
        (n, edges) in arb_graph(),
        machines in 1usize..7,
        k in 1u32..6,
        m2m in any::<bool>(),
    ) {
        let g = build(n, &edges, true, 13);
        let expected = reference::kcore_peeling(&g, k);
        let cfg = EngineConfig::lazygraph()
            .with_bidirectional(true)
            .with_comm_mode(if m2m {
                CommModePolicy::MirrorsToMaster
            } else {
                CommModePolicy::AllToAll
            });
        let result = run(&g, machines, &cfg, &KCore::new(k)).expect("cluster run");
        prop_assert_eq!(result.values, expected);
    }

    /// CC with every interval policy equals union-find.
    #[test]
    fn cc_equivalence(
        (n, edges) in arb_graph(),
        machines in 1usize..7,
        policy_idx in 0usize..3,
    ) {
        let g = build(n, &edges, true, 17);
        let expected = reference::connected_components(&g);
        let policy = [
            IntervalPolicy::paper_adaptive(),
            IntervalPolicy::AlwaysLazy,
            IntervalPolicy::NeverLazy,
        ][policy_idx];
        let cfg = EngineConfig::lazygraph()
            .with_bidirectional(true)
            .with_interval(policy);
        let result = run(&g, machines, &cfg, &ConnectedComponents).expect("cluster run");
        prop_assert_eq!(result.values, expected);
    }

    /// PageRank (additive, tolerance-gated): sync and lazy agree with the
    /// sequential executor within tolerance-scaled error bounds.
    #[test]
    fn pagerank_equivalence(
        (n, edges) in arb_graph(),
        machines in 1usize..6,
    ) {
        let g = build(n, &edges, false, 19);
        let program = PageRankDelta { tolerance: 1e-7 };
        let seq = lazygraph_algorithms::reference::run_sequential(&g, &program);
        for engine in [EngineKind::PowerGraphSync, EngineKind::LazyBlockAsync] {
            let cfg = EngineConfig::lazygraph().with_engine(engine);
            let result = run(&g, machines, &cfg, &program).expect("cluster run");
            for (v, (got, want)) in result.values.iter().zip(&seq).enumerate() {
                prop_assert!(
                    (got.rank - want.rank).abs() < 1e-3 * want.rank.max(1.0),
                    "{:?} vertex {}: {} vs {}", engine, v, got.rank, want.rank
                );
            }
        }
    }

    /// The block-ordered merge rule as a property: pushing a shuffled
    /// delta sequence through the parallel block merge
    /// (`MachineState::deliver_all`) must equal the sequential left-fold
    /// the single-threaded engine performs — bitwise, since PageRank's ⊕
    /// is an order-sensitive float sum — at every thread count and block
    /// size. Queues may differ only in order (engines sort worklists).
    #[test]
    fn parallel_block_merge_equals_sequential_left_fold(
        (n, edges) in arb_graph(),
        raw in proptest::collection::vec(
            (0usize..1usize << 16, -1.0e6f64..1.0e6, any::<bool>()),
            1..250,
        ),
        threads in 1usize..9,
        block_size in 1usize..40,
    ) {
        let g = build(n, &edges, false, 23);
        let cfg = EngineConfig::lazygraph();
        let dg = partition_graph(&g, 1, cfg.partition, &cfg.splitter, cfg.bidirectional);
        let shard = &dg.shards[0];
        let program = PageRankDelta { tolerance: 1e-7 };
        let blank = || {
            let mut st: MachineState<PageRankDelta> =
                MachineState::init(shard, &program, InitMessages::MastersOnly, n);
            st.queue.clear();
            st.message.iter_mut().for_each(|m| *m = None);
            st.active.iter_mut().for_each(|a| *a = false);
            st
        };
        let items: Vec<(u32, f64, bool)> = raw
            .iter()
            .map(|&(t, d, fold)| ((t % shard.num_local()) as u32, d, fold))
            .collect();

        // Sequential reference: the left-fold in item order, deltas
        // accumulated exactly as one-edge-mode receipts are.
        let mut seq = blank();
        for &(l, d, fold) in &items {
            seq.deliver(&program, l, d);
            if fold {
                seq.accumulate_delta(&program, l, d);
            }
        }

        let pctx = ParallelCtx::new(ParallelConfig { threads, block_size });
        let mut par = blank();
        par.deliver_all_lazy(&program, &pctx, items.clone());

        let bits = |v: &[Option<f64>]| -> Vec<Option<u64>> {
            v.iter().map(|m| m.map(f64::to_bits)).collect()
        };
        prop_assert_eq!(bits(&par.message), bits(&seq.message));
        prop_assert_eq!(bits(&par.delta_msg), bits(&seq.delta_msg));
        prop_assert_eq!(&par.active, &seq.active);
        let mut pq = par.queue.clone();
        let mut sq = seq.queue.clone();
        pq.sort_unstable();
        sq.sort_unstable();
        prop_assert_eq!(pq, sq);

        // And the non-lazy entry point agrees with the lazy one when no
        // item asks for delta accumulation.
        let plain: Vec<(u32, f64)> = items.iter().map(|&(l, d, _)| (l, d)).collect();
        let mut seq2 = blank();
        for &(l, d) in &plain {
            seq2.deliver(&program, l, d);
        }
        let mut par2 = blank();
        par2.deliver_all(&program, &pctx, plain);
        prop_assert_eq!(bits(&par2.message), bits(&seq2.message));
        prop_assert_eq!(&par2.active, &seq2.active);
    }
}
