//! Road-network shortest paths — the workload class where the paper
//! reports its largest speedups (huge diameter, tiny replication factor):
//! plan "drive times" from a depot across a road-like lattice and show how
//! the engines compare on this high-diameter propagation problem.
//!
//! ```sh
//! cargo run --release --example sssp_roadtrip
//! ```

use lazygraph::prelude::*;
use lazygraph_algorithms::reference;
use lazygraph_graph::generators::{grid2d, Grid2dConfig};

fn main() {
    // A 90x90 road lattice with local shortcuts; weights are minutes.
    let base = grid2d(Grid2dConfig::road(90, 90, 7));
    let mut b = GraphBuilder::new(base.num_vertices());
    b.extend(base.edges());
    b.symmetrize();
    b.randomize_weights(1.0, 15.0, 7);
    let graph = b.build();
    let depot = VertexId(0);
    println!(
        "road network: {} intersections, {} road segments",
        graph.num_vertices(),
        graph.num_edges()
    );

    let sync = run(&graph, 16, &EngineConfig::powergraph_sync(), &Sssp::new(depot)).expect("cluster run");
    let lazy = run(&graph, 16, &EngineConfig::lazygraph(), &Sssp::new(depot)).expect("cluster run");
    println!("{}", sync.metrics.summary());
    println!("{}", lazy.metrics.summary());
    println!(
        "lazy coherency wins {:.1}x on this high-diameter graph ({} vs {} global syncs)",
        sync.metrics.sim_time / lazy.metrics.sim_time,
        lazy.metrics.global_syncs(),
        sync.metrics.global_syncs(),
    );

    // Both must agree with Dijkstra exactly.
    let truth = reference::dijkstra(&graph, depot);
    assert_eq!(sync.values, truth);
    assert_eq!(lazy.values, truth);

    // Travel-time statistics from the depot.
    let reachable: Vec<f32> = lazy
        .values
        .iter()
        .copied()
        .filter(|d| d.is_finite())
        .collect();
    let max = reachable.iter().cloned().fold(0.0f32, f32::max);
    let mean = reachable.iter().sum::<f32>() / reachable.len() as f64 as f32;
    println!(
        "\nreachable intersections: {} / {}",
        reachable.len(),
        graph.num_vertices()
    );
    println!("mean drive time {mean:.1} min, farthest {max:.1} min");
    // A histogram of drive-time bands.
    let mut bands = [0usize; 8];
    for d in &reachable {
        let band = ((d / max) * 7.99) as usize;
        bands[band] += 1;
    }
    println!("drive-time distribution (8 bands to the farthest point):");
    for (i, count) in bands.iter().enumerate() {
        println!(
            "  band {i}: {:<50} {count}",
            "#".repeat((count * 50 / reachable.len()).max(1))
        );
    }
}
