//! Community-core analysis of a social network with k-core decomposition —
//! the algorithm the paper uses to illustrate lazy coherency (Fig. 1).
//! Finds the densely connected "core" of a twitter-like graph, sweeping k.
//!
//! ```sh
//! cargo run --release --example kcore_social
//! ```

use lazygraph::prelude::*;
use lazygraph_algorithms::reference;
use lazygraph_graph::generators::{rmat, RmatConfig};

fn main() {
    // A heavy-tailed social graph, symmetrised (friendship is mutual).
    let base = rmat(RmatConfig::graph500(12, 10, 99));
    let mut b = GraphBuilder::new(base.num_vertices());
    b.extend(base.edges());
    b.symmetrize();
    let graph = b.build();
    println!(
        "social graph: {} users, {} friendship edges",
        graph.num_vertices(),
        graph.num_edges() / 2
    );

    let cfg = EngineConfig::lazygraph().with_bidirectional(true);
    println!("\n k | core members | largest-k survivors (engine vs peeling)");
    println!("---+--------------+--------------------------------------");
    for k in [2u32, 4, 8, 16, 32] {
        let result = run(&graph, 8, &cfg, &KCore::new(k)).expect("cluster run");
        let survivors = result.values.iter().filter(|&&c| c > 0).count();
        // Cross-check against the sequential peeling reference.
        let peel = reference::kcore_peeling(&graph, k);
        assert_eq!(result.values, peel, "k={k} diverged from peeling");
        println!(
            "{k:>2} | {survivors:>12} | verified in {} coherency points, {:.3}s simulated",
            result.metrics.coherency_points, result.metrics.sim_time
        );
    }

    // Degeneracy-style summary: at which k does the core vanish?
    let mut k = 2;
    loop {
        let result = run(&graph, 8, &cfg, &KCore::new(k)).expect("cluster run");
        if result.values.iter().all(|&c| c == 0) {
            println!("\nthe graph has no {k}-core: community density tops out below k={k}");
            break;
        }
        k *= 2;
        if k > 4096 {
            println!("\ncore persists beyond k=4096");
            break;
        }
    }
}
