//! Convergence anatomy: record the per-round trace of a lazy run and show
//! the adaptive interval model doing its job — the first eager iteration,
//! the moment `turnOnLazy()` fires, and the active-vertex trend that drives
//! it (§4.2.1 of the paper).
//!
//! ```sh
//! cargo run --release --example convergence_history
//! ```

use lazygraph::prelude::*;
use lazygraph_graph::Dataset;

fn main() {
    let ds = Dataset::RoadNetCaLike;
    let graph = ds.build_symmetric(0.2);
    let mut cfg = EngineConfig::lazygraph();
    cfg.record_history = true;
    let result = run(&graph, 12, &cfg, &Sssp::new(0u32)).expect("cluster run");
    println!(
        "{} SSSP on 12 machines: {} coherency points, sim {:.3}s\n",
        ds.name(),
        result.metrics.coherency_points,
        result.metrics.sim_time
    );
    println!("round  active   trend    lazy  subrounds  mode  sim(s)");
    println!("------------------------------------------------------");
    let mut prev: Option<u64> = None;
    for rec in &result.metrics.history {
        let trend = match prev {
            Some(p) if p > 0 => (p as f64 - rec.pending as f64) / p as f64,
            _ => 0.0,
        };
        prev = Some(rec.pending);
        println!(
            "{:>5}  {:>6}  {:>+.3}   {:>4}  {:>9}  {:>4}  {:>6.3}",
            rec.iteration,
            rec.pending,
            trend,
            if rec.lazy_on { "on" } else { "off" },
            rec.local_subrounds,
            if rec.used_m2m { "m2m" } else { "a2a" },
            rec.sim_time,
        );
    }

    // The paper's rule: first iteration eager, then (E/V ≤ 10) turns lazy
    // on for good-locality graphs.
    let h = &result.metrics.history;
    assert!(!h[0].lazy_on, "first iteration must run without a local stage");
    assert!(
        h.iter().skip(1).all(|r| r.lazy_on),
        "road graphs (E/V ≤ 10) must go lazy from iteration 2"
    );
    println!("\ninterval-model behaviour verified: eager first iteration, lazy thereafter");
}
