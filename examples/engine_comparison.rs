//! Side-by-side engine anatomy: run one workload on all four engines and
//! dissect *why* the lazy engines win — global synchronisations,
//! communication traffic, coherency points, comm-mode choices, and the
//! simulated-time breakdown (compute / communication / barrier).
//!
//! ```sh
//! cargo run --release --example engine_comparison
//! ```

use lazygraph::prelude::*;
use lazygraph_graph::Dataset;

fn main() {
    let ds = Dataset::RoadNetCaLike;
    let graph = ds.build_symmetric(0.25);
    println!(
        "{}: {} vertices, {} edges (symmetrised, weighted)",
        ds.name(),
        graph.num_vertices(),
        graph.num_edges()
    );
    println!("workload: SSSP from vertex 0 on 16 machines\n");

    for engine in [
        EngineKind::PowerGraphSync,
        EngineKind::PowerGraphAsync,
        EngineKind::PowerSwitchHybrid,
        EngineKind::LazyBlockAsync,
        EngineKind::LazyVertexAsync,
    ] {
        let cfg = EngineConfig::lazygraph().with_engine(engine);
        let r = run(&graph, 16, &cfg, &Sssp::new(0u32)).expect("cluster run");
        let m = &r.metrics;
        println!("── {} {}", m.engine, "─".repeat(46_usize.saturating_sub(m.engine.len())));
        println!(
            "   simulated time {:>8.3}s   (compute {:.3}s | comm {:.3}s | barrier {:.3}s)",
            m.sim_time, m.breakdown.compute, m.breakdown.comm, m.breakdown.barrier
        );
        println!(
            "   global syncs   {:>8}    traffic {} bytes in {} batches",
            m.global_syncs(),
            m.traffic_bytes(),
            m.stats.total_batches()
        );
        if m.coherency_points > 0 {
            println!(
                "   coherency pts  {:>8}    local sub-rounds {} | a2a {} | m2m {}",
                m.coherency_points, m.local_subrounds, m.a2a_exchanges, m.m2m_exchanges
            );
        }
        println!(
            "   iterations     {:>8}    converged: {}\n",
            m.iterations, m.converged
        );
    }
    println!(
        "Reading the anatomy: the Sync baseline pays 3 barriers + 2 collective\n\
         communications per superstep; LazyBlockAsync collapses whole runs of\n\
         supersteps into barrier-free local sub-rounds and pays one sync per\n\
         data coherency point; the async engines have no barriers at all but\n\
         pay per-message overheads on every hop."
    );
}
