//! Writing your own vertex program: reachability counting ("how many of my
//! in-neighbourhood's seeds can reach me?") as a push-style delta program.
//!
//! This demonstrates the full [`VertexProgram`] contract the LazyGraph
//! engines require (§3.1 of the paper):
//! * a commutative, associative `sum` (bitwise OR over seed masks),
//! * an `inverse` (OR is idempotent, so identity),
//! * an `apply` that folds the accumulator into the vertex value and
//!   decides whether to keep flooding.
//!
//! ```sh
//! cargo run --release --example custom_algorithm
//! ```

use lazygraph::prelude::*;
use lazygraph_engine::{EdgeCtx, VertexCtx};
use lazygraph_graph::generators::{small_world, erdos_renyi};

/// Multi-source reachability: each of up to 64 seed vertices owns one bit;
/// every vertex converges to the OR of the seeds that can reach it.
struct MultiReach {
    seeds: Vec<VertexId>,
}

impl VertexProgram for MultiReach {
    type VData = u64;
    type Delta = u64;

    fn name(&self) -> &'static str {
        "multi-reach"
    }

    fn init_data(&self, _v: VertexId, _ctx: &VertexCtx) -> u64 {
        0
    }

    fn init_message(&self, v: VertexId, _ctx: &VertexCtx) -> Option<u64> {
        self.seeds
            .iter()
            .position(|&s| s == v)
            .map(|bit| 1u64 << bit)
    }

    fn sum(&self, a: u64, b: u64) -> u64 {
        a | b // commutative, associative, idempotent
    }

    fn inverse(&self, accum: u64, _a: u64) -> u64 {
        accum // OR is idempotent: re-applying your own delta is harmless
    }

    fn apply(&self, _v: VertexId, data: &mut u64, accum: u64, _ctx: &VertexCtx) -> Option<u64> {
        let new_bits = accum & !*data;
        if new_bits == 0 {
            return None; // nothing new reached us; stay quiet
        }
        *data |= new_bits;
        Some(new_bits) // flood only the newly learned seeds
    }

    fn scatter(
        &self,
        _v: VertexId,
        _data: &u64,
        delta: u64,
        _ctx: &VertexCtx,
        _edge: &EdgeCtx,
    ) -> Option<u64> {
        Some(delta)
    }

    fn idempotent(&self) -> bool {
        true
    }
}

fn main() {
    let graph = small_world(4000, 3, 0.05, 5);
    let seeds: Vec<VertexId> = (0..16).map(|i| VertexId(i * 250)).collect();
    let program = MultiReach {
        seeds: seeds.clone(),
    };

    // The custom program runs unchanged on every engine.
    for cfg in [
        EngineConfig::powergraph_sync(),
        EngineConfig::lazygraph(),
        EngineConfig::lazy_vertex_async(),
    ] {
        let result = run(&graph, 6, &cfg, &program).expect("cluster run");
        let fully_covered = result
            .values
            .iter()
            .filter(|&&m| m.count_ones() as usize == seeds.len())
            .count();
        println!(
            "{:<18} vertices reached by all {} seeds: {:>5}   ({})",
            result.metrics.engine,
            seeds.len(),
            fully_covered,
            result.metrics.summary()
        );
    }

    // Sanity: on a sparse random digraph, reachability is partial.
    let sparse = erdos_renyi(2000, 2500, 9);
    let result = run(&graph, 4, &EngineConfig::lazygraph(), &program).expect("cluster run");
    let coverage: u32 = result.values.iter().map(|m| m.count_ones()).sum();
    println!(
        "\nsmall-world mean seeds-reaching-a-vertex: {:.2} / {}",
        coverage as f64 / graph.num_vertices() as f64,
        seeds.len()
    );
    let _ = sparse;
}
