//! Quickstart: run PageRank on a simulated 8-machine cluster, first with
//! the PowerGraph Sync baseline, then with LazyGraph's lazy coherency, and
//! compare what the paper's figures measure.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lazygraph::prelude::*;
use lazygraph_graph::generators::{web_crawl, WebCrawlConfig};

fn main() {
    // 1. A web-crawl-like graph (~5k pages, power-law, crawl locality).
    let graph = web_crawl(WebCrawlConfig::google_flavour(5_000, 42));
    println!(
        "graph: {} vertices, {} edges, E/V = {:.2}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.ev_ratio()
    );

    // 2. PowerGraph Sync: eager replica coherency, 3 global syncs and 2
    //    communications per superstep.
    let sync = run(
        &graph,
        8,
        &EngineConfig::powergraph_sync(),
        &PageRankDelta::default(),
    ).expect("cluster run");

    // 3. LazyGraph: replicas drift between data coherency points; one sync
    //    per coherency point; deltas merged by computation.
    let lazy = run(
        &graph,
        8,
        &EngineConfig::lazygraph(),
        &PageRankDelta::default(),
    ).expect("cluster run");

    println!("\n{}", sync.metrics.summary());
    println!("{}", lazy.metrics.summary());
    println!(
        "\nspeedup {:.2}x | syncs {}→{} | traffic {}B→{}B",
        sync.metrics.sim_time / lazy.metrics.sim_time,
        sync.metrics.global_syncs(),
        lazy.metrics.global_syncs(),
        sync.metrics.traffic_bytes(),
        lazy.metrics.traffic_bytes(),
    );

    // 4. Both engines converge to the same ranks (within the tolerance).
    let max_diff = sync
        .values
        .iter()
        .zip(&lazy.values)
        .map(|(a, b)| (a.rank - b.rank).abs())
        .fold(0.0f64, f64::max);
    println!("max |rank_sync − rank_lazy| = {max_diff:.6}");
    assert!(max_diff < 0.05, "engines diverged");

    // 5. The ten most important pages.
    let mut ranked: Vec<(usize, f64)> = lazy
        .values
        .iter()
        .enumerate()
        .map(|(v, d)| (v, d.rank))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop pages by rank:");
    for (v, rank) in ranked.iter().take(10) {
        println!("  page {v:>6}  rank {rank:.4}");
    }
}
