//! The multiprocess worker runtime (DESIGN.md §10): a launcher that runs
//! one engine round-trip across N **separate OS processes** connected by
//! the framed-TCP mesh over loopback.
//!
//! The launcher serialises a [`WorkerJob`] — the full edge list (weights
//! as exact IEEE-754 bit patterns), the engine configuration slice, and
//! the socket addresses of both meshes — spawns N `lazygraph-worker`
//! processes, and collects each worker's Wire-encoded result file: its
//! per-machine outcome, its `NetStats` snapshot (with *measured* frame
//! bytes, since every exchange crossed a real socket), and its simulated
//! time breakdown. Every worker deterministically re-partitions the same
//! graph, so all processes agree on the placement without shipping shard
//! structures.
//!
//! Two meshes per run: a control mesh (`Endpoint<u8>`) backing the
//! mesh-based [`Collective`] (barriers/allreduce), and a data mesh typed
//! by the engine's message. Workers establish them in that fixed order.
//!
//! Only the engines whose machine loops communicate exclusively through
//! `Endpoint` + `Collective` can run multiprocess: **PowerGraphSync**,
//! **LazyBlockAsync**, and **DeltaAccum**. The async-family engines
//! coordinate termination
//! through shared memory and stay in-process (they still support the
//! threaded TCP transport via `EngineConfig::with_transport`).
//!
//! Determinism: a multiprocess run is bitwise-identical to the in-process
//! run on the same graph and configuration — the codec is position-based
//! little-endian with floats as bit patterns, exchanges sort inbound
//! batches by sender, and the mesh collective folds contributions in
//! machine order.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use lazygraph_cluster::{CostModel, StatsSnapshot, TransportKind};
use lazygraph_engine::lazy_block::{self, LazyCounters};
use lazygraph_engine::sync_engine;
use lazygraph_engine::{CommModePolicy, EngineConfig, EngineKind, IntervalPolicy, SimBreakdown,
    VertexProgram};
use lazygraph_graph::Graph;
use lazygraph_net::{NetError, Wire, WireReader};
use lazygraph_engine::RebalanceConfig;
use lazygraph_partition::{HubFanoutConfig, PartitionStrategy, SplitterConfig};

/// Which vertex program a worker process should instantiate. The launcher
/// and worker agree on this enum; the generic `P` of [`run_multiprocess`]
/// must be the program type the spec names, or result decoding fails.
#[derive(Clone, Debug, PartialEq)]
pub enum AlgoSpec {
    /// PageRank-Delta with the given flush tolerance.
    PageRank { tolerance: f64 },
    /// Single-source shortest paths from `source`.
    Sssp { source: u32 },
    /// BFS levels from `source`.
    Bfs { source: u32 },
    /// Connected components (label propagation).
    Cc,
    /// k-core decomposition.
    KCore { k: u32 },
    /// Widest path from `source`.
    Widest { source: u32 },
}

impl AlgoSpec {
    /// Report name, matching the in-process program names.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoSpec::PageRank { .. } => "pagerank",
            AlgoSpec::Sssp { .. } => "sssp",
            AlgoSpec::Bfs { .. } => "bfs",
            AlgoSpec::Cc => "cc",
            AlgoSpec::KCore { .. } => "kcore",
            AlgoSpec::Widest { .. } => "widest-path",
        }
    }
}

impl Wire for AlgoSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AlgoSpec::PageRank { tolerance } => {
                out.push(0);
                tolerance.encode(out);
            }
            AlgoSpec::Sssp { source } => {
                out.push(1);
                source.encode(out);
            }
            AlgoSpec::Bfs { source } => {
                out.push(2);
                source.encode(out);
            }
            AlgoSpec::Cc => out.push(3),
            AlgoSpec::KCore { k } => {
                out.push(4);
                k.encode(out);
            }
            AlgoSpec::Widest { source } => {
                out.push(5);
                source.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(match r.take_u8()? {
            0 => AlgoSpec::PageRank {
                tolerance: f64::decode(r)?,
            },
            1 => AlgoSpec::Sssp {
                source: u32::decode(r)?,
            },
            2 => AlgoSpec::Bfs {
                source: u32::decode(r)?,
            },
            3 => AlgoSpec::Cc,
            4 => AlgoSpec::KCore { k: u32::decode(r)? },
            5 => AlgoSpec::Widest {
                source: u32::decode(r)?,
            },
            tag => return Err(NetError::BadTag { tag, ty: "AlgoSpec" }),
        })
    }
}

/// Everything one worker process needs to run its machine: the graph (as
/// the exact edge list), the partition/engine configuration slice, and
/// the two mesh address lists. Written Wire-encoded to a job file read by
/// every worker.
#[derive(Clone, Debug)]
pub struct WorkerJob {
    pub engine: EngineKind,
    pub algo: AlgoSpec,
    pub num_machines: usize,
    /// Data-mesh socket addresses, one per machine (`127.0.0.1:port`).
    pub data_addrs: Vec<String>,
    /// Control-mesh socket addresses backing the collective.
    pub ctrl_addrs: Vec<String>,
    pub num_vertices: usize,
    /// `(src, dst, weight)` in the launcher graph's edge order; weights
    /// cross as bit patterns so the rebuilt graph is identical.
    pub edges: Vec<(u32, u32, f32)>,
    pub partition: PartitionStrategy,
    pub splitter: SplitterConfig,
    pub bidirectional: bool,
    pub comm_mode: CommModePolicy,
    pub interval: IntervalPolicy,
    pub cost: CostModel,
    pub max_iterations: u64,
    pub delta_suppression: bool,
    pub exchange_fast: bool,
    /// Already-resolved thread count (the launcher resolves `0 = auto`
    /// before shipping, so all workers agree).
    pub threads_per_machine: usize,
    pub block_size: usize,
    /// Pipelined coherency exchange (DESIGN.md §11).
    pub pipeline: bool,
    /// Snapshot every K supersteps (0 = checkpointing off, PR 4 fail-fast
    /// behaviour).
    pub checkpoint_every: u64,
    /// Directory for the per-rank snapshot files (empty = none).
    pub checkpoint_dir: String,
    /// How long a surviving worker keeps a torn link in the "awaiting
    /// rejoin" window, in milliseconds (0 = poison immediately).
    pub rejoin_window_ms: u64,
    /// Adaptive pipeline part sizing (DESIGN.md §14). Appended last on
    /// the wire (PR 8) so every pre-existing field keeps its offset.
    pub adaptive_parts: bool,
    /// Priority-bucket count for the delta-accumulative scheduler
    /// (DESIGN.md §15). Appended last, after the PR 8 fields.
    pub delta_buckets: usize,
    /// Scheduling/termination tolerance for the delta engine.
    pub delta_tolerance: f64,
    /// Degree-aware hub fan-out at partition time (DESIGN.md §16).
    /// Appended last, after the PR 9 fields.
    pub hub_fanout: HubFanoutConfig,
    /// Online live-migration policy (DESIGN.md §16).
    pub rebalance: RebalanceConfig,
}

fn encode_engine_kind(k: EngineKind, out: &mut Vec<u8>) {
    out.push(match k {
        EngineKind::PowerGraphSync => 0,
        EngineKind::PowerGraphAsync => 1,
        EngineKind::LazyBlockAsync => 2,
        EngineKind::LazyVertexAsync => 3,
        EngineKind::PowerSwitchHybrid => 4,
        EngineKind::DeltaAccum => 5,
    });
}

fn decode_engine_kind(r: &mut WireReader<'_>) -> Result<EngineKind, NetError> {
    Ok(match r.take_u8()? {
        0 => EngineKind::PowerGraphSync,
        1 => EngineKind::PowerGraphAsync,
        2 => EngineKind::LazyBlockAsync,
        3 => EngineKind::LazyVertexAsync,
        4 => EngineKind::PowerSwitchHybrid,
        5 => EngineKind::DeltaAccum,
        tag => return Err(NetError::BadTag { tag, ty: "EngineKind" }),
    })
}

impl Wire for WorkerJob {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_engine_kind(self.engine, out);
        self.algo.encode(out);
        (self.num_machines as u64).encode(out);
        self.data_addrs.encode(out);
        self.ctrl_addrs.encode(out);
        (self.num_vertices as u64).encode(out);
        self.edges.encode(out);
        out.push(match self.partition {
            PartitionStrategy::Random => 0,
            PartitionStrategy::Grid => 1,
            PartitionStrategy::Coordinated => 2,
            PartitionStrategy::Hybrid => 3,
            PartitionStrategy::AdversarialHubs => 4,
        });
        self.splitter.teps.encode(out);
        self.splitter.t_extra.encode(out);
        self.splitter
            .high_degree_threshold
            .map(|x| x as u64)
            .encode(out);
        self.splitter
            .low_degree_threshold
            .map(|x| x as u64)
            .encode(out);
        self.splitter.max_fraction.encode(out);
        self.bidirectional.encode(out);
        out.push(match self.comm_mode {
            CommModePolicy::Auto => 0,
            CommModePolicy::AllToAll => 1,
            CommModePolicy::MirrorsToMaster => 2,
        });
        match self.interval {
            IntervalPolicy::Adaptive {
                ev_threshold,
                trend_threshold,
                local_bound_factor,
            } => {
                out.push(0);
                ev_threshold.encode(out);
                trend_threshold.encode(out);
                local_bound_factor.encode(out);
            }
            IntervalPolicy::AlwaysLazy => out.push(1),
            IntervalPolicy::NeverLazy => out.push(2),
        }
        self.cost.teps.encode(out);
        self.cost.apply_cost.encode(out);
        self.cost.barrier_latency.encode(out);
        self.cost.async_msg_overhead.encode(out);
        self.cost.async_send_cpu.encode(out);
        self.cost.latency.encode(out);
        self.cost.async_apply_cost.encode(out);
        self.cost.async_lock_rtt.encode(out);
        self.cost.bandwidth.encode(out);
        self.max_iterations.encode(out);
        self.delta_suppression.encode(out);
        self.exchange_fast.encode(out);
        (self.threads_per_machine as u64).encode(out);
        (self.block_size as u64).encode(out);
        self.pipeline.encode(out);
        // Fault-tolerance fields (PR 6) appended last so the layout of
        // every pre-existing field is unchanged.
        self.checkpoint_every.encode(out);
        self.checkpoint_dir.encode(out);
        self.rejoin_window_ms.encode(out);
        // Adaptive part sizing (PR 8), appended last.
        self.adaptive_parts.encode(out);
        // Delta-accumulative scheduler knobs (PR 9), appended last.
        (self.delta_buckets as u64).encode(out);
        self.delta_tolerance.encode(out);
        // Skew knobs (PR 10), appended last.
        self.hub_fanout
            .degree_threshold
            .map(|x| x as u64)
            .encode(out);
        (self.hub_fanout.fanout as u64).encode(out);
        self.rebalance.every.encode(out);
        self.rebalance.ratio_milli.encode(out);
        (self.rebalance.max_moves as u64).encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let engine = decode_engine_kind(r)?;
        let algo = AlgoSpec::decode(r)?;
        let num_machines = u64::decode(r)? as usize;
        let data_addrs = Vec::<String>::decode(r)?;
        let ctrl_addrs = Vec::<String>::decode(r)?;
        let num_vertices = u64::decode(r)? as usize;
        let edges = Vec::<(u32, u32, f32)>::decode(r)?;
        let partition = match r.take_u8()? {
            0 => PartitionStrategy::Random,
            1 => PartitionStrategy::Grid,
            2 => PartitionStrategy::Coordinated,
            3 => PartitionStrategy::Hybrid,
            4 => PartitionStrategy::AdversarialHubs,
            tag => {
                return Err(NetError::BadTag {
                    tag,
                    ty: "PartitionStrategy",
                })
            }
        };
        let splitter = SplitterConfig {
            teps: f64::decode(r)?,
            t_extra: f64::decode(r)?,
            high_degree_threshold: Option::<u64>::decode(r)?.map(|x| x as usize),
            low_degree_threshold: Option::<u64>::decode(r)?.map(|x| x as usize),
            max_fraction: f64::decode(r)?,
        };
        let bidirectional = bool::decode(r)?;
        let comm_mode = match r.take_u8()? {
            0 => CommModePolicy::Auto,
            1 => CommModePolicy::AllToAll,
            2 => CommModePolicy::MirrorsToMaster,
            tag => {
                return Err(NetError::BadTag {
                    tag,
                    ty: "CommModePolicy",
                })
            }
        };
        let interval = match r.take_u8()? {
            0 => IntervalPolicy::Adaptive {
                ev_threshold: f64::decode(r)?,
                trend_threshold: f64::decode(r)?,
                local_bound_factor: f64::decode(r)?,
            },
            1 => IntervalPolicy::AlwaysLazy,
            2 => IntervalPolicy::NeverLazy,
            tag => {
                return Err(NetError::BadTag {
                    tag,
                    ty: "IntervalPolicy",
                })
            }
        };
        let cost = CostModel {
            teps: f64::decode(r)?,
            apply_cost: f64::decode(r)?,
            barrier_latency: f64::decode(r)?,
            async_msg_overhead: f64::decode(r)?,
            async_send_cpu: f64::decode(r)?,
            latency: f64::decode(r)?,
            async_apply_cost: f64::decode(r)?,
            async_lock_rtt: f64::decode(r)?,
            bandwidth: f64::decode(r)?,
        };
        Ok(WorkerJob {
            engine,
            algo,
            num_machines,
            data_addrs,
            ctrl_addrs,
            num_vertices,
            edges,
            partition,
            splitter,
            bidirectional,
            comm_mode,
            interval,
            cost,
            max_iterations: u64::decode(r)?,
            delta_suppression: bool::decode(r)?,
            exchange_fast: bool::decode(r)?,
            threads_per_machine: u64::decode(r)? as usize,
            block_size: u64::decode(r)? as usize,
            pipeline: bool::decode(r)?,
            checkpoint_every: u64::decode(r)?,
            checkpoint_dir: String::decode(r)?,
            rejoin_window_ms: u64::decode(r)?,
            adaptive_parts: bool::decode(r)?,
            delta_buckets: u64::decode(r)? as usize,
            delta_tolerance: f64::decode(r)?,
            hub_fanout: HubFanoutConfig {
                degree_threshold: Option::<u64>::decode(r)?.map(|x| x as usize),
                fanout: u64::decode(r)? as usize,
            },
            rebalance: RebalanceConfig {
                every: u64::decode(r)?,
                ratio_milli: u64::decode(r)?,
                max_moves: u64::decode(r)? as usize,
            },
        })
    }
}

/// Fault-tolerance knobs for a multiprocess launch. `Default` is the
/// PR 4 behaviour: no checkpoints, no rejoin window, a dying worker
/// poisons the gang and the launch fails fast.
#[derive(Clone, Debug, Default)]
pub struct MpOptions {
    /// Snapshot every K supersteps (0 = checkpointing off).
    pub checkpoint_every: u64,
    /// How long surviving workers hold a torn link awaiting a rejoin, in
    /// milliseconds (0 with checkpointing on picks a 30 s default).
    pub rejoin_window_ms: u64,
    /// How many crashed workers the launcher may respawn before reporting
    /// the failure instead.
    pub respawn_budget: u32,
    /// Arm `LAZYGRAPH_FAILPOINT` on one rank's *first* spawn
    /// (`(rank, spec)`, e.g. `(2, "superstep:3")`). Respawns never re-arm
    /// it. Deterministic fault-injection hook for the test harness.
    pub failpoint: Option<(usize, String)>,
}

/// A multiprocess launch failure.
#[derive(Debug)]
pub enum MultiprocError {
    /// The configured engine cannot run multiprocess (async-family
    /// engines coordinate termination through shared memory).
    UnsupportedEngine(&'static str),
    /// Filesystem / process-spawn failure.
    Io(String),
    /// A worker's job or result bytes failed to decode.
    Decode(String),
    /// A worker process exited unsuccessfully; carries its stderr.
    Worker { me: usize, detail: String },
}

impl fmt::Display for MultiprocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiprocError::UnsupportedEngine(name) => {
                write!(
                    f,
                    "engine {name} cannot run multiprocess (shared-memory termination); \
                     use powergraph-sync, lazy-block-async, or delta-accum"
                )
            }
            MultiprocError::Io(detail) => write!(f, "multiprocess launcher I/O: {detail}"),
            MultiprocError::Decode(detail) => write!(f, "multiprocess codec: {detail}"),
            MultiprocError::Worker { me, detail } => {
                write!(f, "worker {me} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for MultiprocError {}

/// The assembled outcome of a multiprocess run.
pub struct MultiprocOutcome<V> {
    /// Final vertex values, indexed by global vertex id — bitwise equal
    /// to the in-process run's.
    pub values: Vec<V>,
    /// Supersteps (Sync) / coherency iterations (LazyBlockAsync).
    pub iterations: u64,
    pub converged: bool,
    /// Final simulated time (max across workers).
    pub sim_time: f64,
    /// Lazy-engine counters (`None` for the Sync engine).
    pub counters: Option<LazyCounters>,
    /// Element-wise sum of all workers' `NetStats` snapshots. Wire byte
    /// counters are *measured* frame bytes — every exchange crossed a
    /// real socket.
    pub stats: StatsSnapshot,
    /// Each worker's own snapshot, indexed by machine.
    pub per_worker_stats: Vec<StatsSnapshot>,
    /// Worker 0's simulated-time breakdown (the only recorder).
    pub breakdown: SimBreakdown,
}

/// True if `engine` can run as separate processes.
pub fn multiproc_supported(engine: EngineKind) -> bool {
    matches!(
        engine,
        EngineKind::PowerGraphSync | EngineKind::LazyBlockAsync | EngineKind::DeltaAccum
    )
}

static LAUNCH_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err<E: fmt::Display>(what: &str, e: E) -> MultiprocError {
    MultiprocError::Io(format!("{what}: {e}"))
}

/// Reserves `n` distinct loopback ports by binding ephemeral listeners,
/// then releasing them. The usual probe pattern: a port could in
/// principle be re-taken before the worker binds it, in which case mesh
/// establishment fails loudly and the run errors out rather than hangs.
fn alloc_loopback_addrs(n: usize) -> Result<Vec<String>, MultiprocError> {
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = std::net::TcpListener::bind("127.0.0.1:0")
            .map_err(|e| io_err("reserving loopback port", e))?;
        addrs.push(
            l.local_addr()
                .map_err(|e| io_err("reading reserved port", e))?
                .to_string(),
        );
        listeners.push(l); // hold all so the ports are distinct
    }
    Ok(addrs)
}

fn decode_worker_result<O: Wire>(
    me: usize,
    bytes: &[u8],
) -> Result<(O, StatsSnapshot, SimBreakdown), MultiprocError> {
    let mut r = WireReader::new(bytes);
    let fail = |e: NetError| MultiprocError::Decode(format!("worker {me} result: {e}"));
    let out = O::decode(&mut r).map_err(fail)?;
    let stats = StatsSnapshot::decode(&mut r).map_err(fail)?;
    let breakdown = SimBreakdown::decode(&mut r).map_err(fail)?;
    r.finish().map_err(fail)?;
    Ok((out, stats, breakdown))
}

/// Runs `spec` on `graph` across `num_machines` worker **processes**
/// connected by framed TCP over loopback. `P` must be the program type
/// `spec` names (e.g. `Sssp` for [`AlgoSpec::Sssp`]); `worker_bin` is the
/// path to the `lazygraph-worker` binary.
///
/// `cfg.transport` is ignored — a multiprocess run is TCP by definition.
pub fn run_multiprocess<P: VertexProgram>(
    graph: &Graph,
    num_machines: usize,
    cfg: &EngineConfig,
    spec: &AlgoSpec,
    worker_bin: &Path,
) -> Result<MultiprocOutcome<P::VData>, MultiprocError> {
    run_multiprocess_with::<P>(graph, num_machines, cfg, spec, worker_bin, &MpOptions::default())
}

/// [`run_multiprocess`] with fault-tolerance options: periodic worker
/// checkpoints, a rejoin window on every mesh link, and a launcher-side
/// respawn policy — a crashed worker is restarted with `--resume`, loads
/// its latest snapshot, rejoins the mesh, and the run completes with
/// results bitwise-identical to an undisturbed run (DESIGN.md §12).
pub fn run_multiprocess_with<P: VertexProgram>(
    graph: &Graph,
    num_machines: usize,
    cfg: &EngineConfig,
    spec: &AlgoSpec,
    worker_bin: &Path,
    opts: &MpOptions,
) -> Result<MultiprocOutcome<P::VData>, MultiprocError> {
    if !multiproc_supported(cfg.engine) {
        return Err(MultiprocError::UnsupportedEngine(cfg.engine.name()));
    }
    let n = num_machines.max(1);
    let job = WorkerJob {
        engine: cfg.engine,
        algo: spec.clone(),
        num_machines: n,
        data_addrs: alloc_loopback_addrs(n)?,
        ctrl_addrs: alloc_loopback_addrs(n)?,
        num_vertices: graph.num_vertices(),
        edges: graph
            .edges()
            .map(|e| (e.src.0, e.dst.0, e.weight))
            .collect(),
        partition: cfg.partition,
        splitter: cfg.splitter,
        bidirectional: cfg.bidirectional,
        comm_mode: cfg.comm_mode,
        interval: cfg.interval,
        cost: cfg.cost,
        max_iterations: cfg.max_iterations,
        delta_suppression: cfg.delta_suppression,
        exchange_fast: cfg.exchange_fast,
        threads_per_machine: cfg.resolve_threads(n),
        block_size: cfg.block_size.max(1),
        pipeline: cfg.pipeline,
        checkpoint_every: opts.checkpoint_every,
        checkpoint_dir: String::new(),
        rejoin_window_ms: if opts.checkpoint_every > 0 && opts.rejoin_window_ms == 0 {
            30_000
        } else {
            opts.rejoin_window_ms
        },
        adaptive_parts: cfg.adaptive_parts,
        delta_buckets: cfg.delta_buckets,
        delta_tolerance: cfg.delta_tolerance,
        hub_fanout: cfg.hub_fanout,
        rebalance: cfg.rebalance,
    };
    let mut job = job;

    let seq = LAUNCH_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "lazygraph-mp-{}-{seq}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).map_err(|e| io_err("creating scratch dir", e))?;
    if job.checkpoint_every > 0 {
        let ckpt = dir.join("ckpt");
        std::fs::create_dir_all(&ckpt).map_err(|e| io_err("creating checkpoint dir", e))?;
        job.checkpoint_dir = ckpt.to_string_lossy().into_owned();
    }
    let outcome = launch_in(&dir, &job, worker_bin, opts)
        .and_then(|result_files| assemble_outcome::<P>(cfg.engine, &job, result_files));
    let _ = std::fs::remove_dir_all(&dir); // best-effort cleanup
    outcome
}

/// Spawns one worker process. `resume` adds `--resume` (load the latest
/// snapshot and rejoin the mesh); `failpoint` arms `LAZYGRAPH_FAILPOINT`
/// in the child's environment. The launcher's own environment never leaks
/// a failpoint into the gang.
fn spawn_worker(
    worker_bin: &Path,
    job_path: &Path,
    me: usize,
    out_path: &Path,
    resume: bool,
    failpoint: Option<&str>,
) -> std::io::Result<std::process::Child> {
    let mut cmd = Command::new(worker_bin);
    cmd.arg("--job")
        .arg(job_path)
        .arg("--me")
        .arg(me.to_string())
        .arg("--out")
        .arg(out_path)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .env_remove("LAZYGRAPH_FAILPOINT");
    if resume {
        cmd.arg("--resume");
    }
    if let Some(spec) = failpoint {
        cmd.env("LAZYGRAPH_FAILPOINT", spec);
    }
    cmd.spawn()
}

/// Writes the job file, spawns the workers, supervises them to completion
/// (respawning crashed ones with `--resume` while `opts.respawn_budget`
/// lasts and checkpointing is on), and returns the raw result bytes per
/// machine.
fn launch_in(
    dir: &Path,
    job: &WorkerJob,
    worker_bin: &Path,
    opts: &MpOptions,
) -> Result<Vec<Vec<u8>>, MultiprocError> {
    let job_path = dir.join("job.bin");
    std::fs::write(&job_path, job.to_wire()).map_err(|e| io_err("writing job file", e))?;
    let out_paths: Vec<PathBuf> = (0..job.num_machines)
        .map(|i| dir.join(format!("result-{i}.bin")))
        .collect();

    let mut children: Vec<Option<std::process::Child>> = Vec::with_capacity(job.num_machines);
    for (me, out_path) in out_paths.iter().enumerate() {
        let failpoint = opts
            .failpoint
            .as_ref()
            .filter(|(rank, _)| *rank == me)
            .map(|(_, spec)| spec.as_str());
        match spawn_worker(worker_bin, &job_path, me, out_path, false, failpoint) {
            Ok(child) => children.push(Some(child)),
            Err(e) => {
                // A worker that never spawned would hang the mesh: kill
                // the ones already running and fail the launch.
                for c in children.iter_mut().flatten() {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(io_err("spawning lazygraph-worker", e));
            }
        }
    }

    // Supervision loop. Without recovery a dying worker surfaces on its
    // peers as a transport error (shutdown handshake / poisoned readers),
    // so every process exits rather than hangs. With recovery, a non-zero
    // exit is respawned with `--resume` (failpoint disarmed) while the
    // budget lasts; the survivors hold the torn links in their rejoin
    // windows until the restarted worker dials back in.
    let mut failures: Vec<(usize, String)> = Vec::new();
    let mut done = vec![false; job.num_machines];
    let mut respawns_left = opts.respawn_budget;
    let recovery_on = job.checkpoint_every > 0 && job.rejoin_window_ms > 0;
    let debug = std::env::var_os("LAZYGRAPH_MP_DEBUG").is_some();
    while done.iter().any(|d| !d) {
        let mut progressed = false;
        for me in 0..job.num_machines {
            if done[me] {
                continue;
            }
            let exited = match children[me].as_mut() {
                Some(child) => match child.try_wait() {
                    Ok(Some(_)) => true,
                    Ok(None) => false,
                    Err(e) => {
                        done[me] = true;
                        failures.push((me, format!("wait failed: {e}")));
                        continue;
                    }
                },
                None => {
                    done[me] = true;
                    continue;
                }
            };
            if !exited {
                continue;
            }
            progressed = true;
            // Already exited, so this drains the stderr pipe and reaps
            // without blocking on a live process.
            let out = match children[me]
                .take()
                // lazylint: allow(no-panic) -- the `exited` branch above only runs when this slot held a live child
                .expect("checked above")
                .wait_with_output()
            {
                Ok(out) => out,
                Err(e) => {
                    done[me] = true;
                    failures.push((me, format!("wait failed: {e}")));
                    continue;
                }
            };
            let stderr = String::from_utf8_lossy(&out.stderr).trim().to_string();
            if out.status.success() {
                done[me] = true;
                if debug && !stderr.is_empty() {
                    eprintln!("[worker {me}] {stderr}");
                }
            } else if recovery_on && respawns_left > 0 {
                respawns_left -= 1;
                if debug {
                    eprintln!(
                        "[launcher] worker {me} died (exit {:?}): respawning with --resume",
                        out.status.code()
                    );
                }
                match spawn_worker(worker_bin, &job_path, me, &out_paths[me], true, None) {
                    Ok(child) => children[me] = Some(child),
                    Err(e) => {
                        done[me] = true;
                        failures.push((me, format!("respawn failed: {e}")));
                    }
                }
            } else {
                done[me] = true;
                failures.push((me, format!("exit {:?}: {stderr}", out.status.code())));
            }
        }
        if !progressed {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }
    // Report the first failing worker but include every peer's failure:
    // with a mesh transport the root cause is often on a *different*
    // machine than the one whose error the caller happens to see.
    if let Some((me, detail)) = failures.first() {
        let mut detail = detail.clone();
        for (peer, d) in &failures[1..] {
            detail.push_str(&format!("; worker {peer}: {d}"));
        }
        return Err(MultiprocError::Worker { me: *me, detail });
    }

    out_paths
        .iter()
        .enumerate()
        .map(|(me, p)| {
            std::fs::read(p).map_err(|e| {
                MultiprocError::Worker {
                    me,
                    detail: format!("exited 0 but wrote no result file: {e}"),
                }
            })
        })
        .collect()
}

fn assemble_outcome<P: VertexProgram>(
    engine: EngineKind,
    job: &WorkerJob,
    result_files: Vec<Vec<u8>>,
) -> Result<MultiprocOutcome<P::VData>, MultiprocError> {
    let mut per_worker_stats = Vec::with_capacity(result_files.len());
    let mut merged = StatsSnapshot::default();
    match engine {
        EngineKind::PowerGraphSync => {
            let mut outs: Vec<sync_engine::MachineOut<P>> = Vec::new();
            let mut breakdown = SimBreakdown::default();
            for (me, bytes) in result_files.iter().enumerate() {
                let (out, stats, bd) =
                    decode_worker_result::<sync_engine::MachineOut<P>>(me, bytes)?;
                if me == 0 {
                    breakdown = bd;
                }
                merged.merge(&stats);
                per_worker_stats.push(stats);
                outs.push(out);
            }
            let (values, iterations, converged, sim_time) =
                sync_engine::assemble(outs, job.num_vertices);
            Ok(MultiprocOutcome {
                values,
                iterations,
                converged,
                sim_time,
                counters: None,
                stats: merged,
                per_worker_stats,
                breakdown,
            })
        }
        // The delta engine shares the lazy engine's per-machine output
        // shape, so both assemble through the same decode path.
        EngineKind::LazyBlockAsync | EngineKind::DeltaAccum => {
            let mut outs: Vec<lazy_block::MachineOut<P>> = Vec::new();
            let mut breakdown = SimBreakdown::default();
            for (me, bytes) in result_files.iter().enumerate() {
                let (out, stats, bd) =
                    decode_worker_result::<lazy_block::MachineOut<P>>(me, bytes)?;
                if me == 0 {
                    breakdown = bd;
                }
                merged.merge(&stats);
                per_worker_stats.push(stats);
                outs.push(out);
            }
            let (values, iterations, converged, sim_time, counters) =
                lazy_block::assemble(outs, job.num_vertices)
                    .map_err(|e| MultiprocError::Decode(e.to_string()))?;
            Ok(MultiprocOutcome {
                values,
                iterations,
                converged,
                sim_time,
                counters: Some(counters),
                stats: merged,
                per_worker_stats,
                breakdown,
            })
        }
        other => Err(MultiprocError::UnsupportedEngine(other.name())),
    }
}

/// Ignore `cfg.transport` (multiprocess is TCP by definition) but honour
/// everything else when building the job from an [`EngineConfig`]. Kept
/// as a free function so callers see the contract in one place.
pub fn effective_transport(_cfg: &EngineConfig) -> TransportKind {
    TransportKind::Tcp
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazygraph_engine::TransportKind;

    fn job() -> WorkerJob {
        let cfg = EngineConfig::lazygraph();
        WorkerJob {
            engine: EngineKind::LazyBlockAsync,
            algo: AlgoSpec::PageRank { tolerance: 1e-3 },
            num_machines: 3,
            data_addrs: vec!["127.0.0.1:4000".into(); 3],
            ctrl_addrs: vec!["127.0.0.1:5000".into(); 3],
            num_vertices: 7,
            edges: vec![(0, 1, 1.5), (1, 2, 0.25), (6, 0, 3.0)],
            partition: cfg.partition,
            splitter: cfg.splitter,
            bidirectional: false,
            comm_mode: cfg.comm_mode,
            interval: cfg.interval,
            cost: cfg.cost,
            max_iterations: 100,
            delta_suppression: true,
            exchange_fast: true,
            threads_per_machine: 2,
            block_size: 1024,
            pipeline: true,
            checkpoint_every: 4,
            checkpoint_dir: "/tmp/lz-ckpt".into(),
            rejoin_window_ms: 15_000,
            adaptive_parts: true,
            delta_buckets: 16,
            delta_tolerance: 1e-3,
            hub_fanout: HubFanoutConfig {
                degree_threshold: Some(32),
                fanout: 4,
            },
            rebalance: RebalanceConfig::enabled(2, 1500, 8),
        }
    }

    #[test]
    fn worker_job_round_trips() {
        let j = job();
        let bytes = j.to_wire();
        let back = WorkerJob::from_wire(&bytes).expect("decode");
        assert_eq!(back.engine, j.engine);
        assert_eq!(back.algo, j.algo);
        assert_eq!(back.num_machines, 3);
        assert_eq!(back.edges, j.edges);
        assert_eq!(back.data_addrs, j.data_addrs);
        assert_eq!(back.max_iterations, 100);
        assert_eq!(back.threads_per_machine, 2);
        assert!(back.pipeline);
        assert_eq!(back.checkpoint_every, 4);
        assert_eq!(back.checkpoint_dir, "/tmp/lz-ckpt");
        assert_eq!(back.rejoin_window_ms, 15_000);
        assert!(back.adaptive_parts);
        assert_eq!(back.delta_buckets, 16);
        assert_eq!(back.delta_tolerance.to_bits(), 1e-3f64.to_bits());
        assert_eq!(back.hub_fanout.degree_threshold, Some(32));
        assert_eq!(back.hub_fanout.fanout, 4);
        assert_eq!(back.rebalance, RebalanceConfig::enabled(2, 1500, 8));
        assert_eq!(back.cost.bandwidth.to_bits(), j.cost.bandwidth.to_bits());
        assert_eq!(
            back.splitter.t_extra.to_bits(),
            j.splitter.t_extra.to_bits()
        );
    }

    #[test]
    fn algo_specs_round_trip() {
        for spec in [
            AlgoSpec::PageRank { tolerance: 2.5e-4 },
            AlgoSpec::Sssp { source: 7 },
            AlgoSpec::Bfs { source: 0 },
            AlgoSpec::Cc,
            AlgoSpec::KCore { k: 4 },
            AlgoSpec::Widest { source: 9 },
        ] {
            let bytes = spec.to_wire();
            assert_eq!(AlgoSpec::from_wire(&bytes).expect("decode"), spec);
        }
    }

    #[test]
    fn unsupported_engines_are_rejected() {
        assert!(multiproc_supported(EngineKind::PowerGraphSync));
        assert!(multiproc_supported(EngineKind::LazyBlockAsync));
        assert!(multiproc_supported(EngineKind::DeltaAccum));
        assert!(!multiproc_supported(EngineKind::PowerGraphAsync));
        assert!(!multiproc_supported(EngineKind::LazyVertexAsync));
        assert!(!multiproc_supported(EngineKind::PowerSwitchHybrid));
        let cfg = EngineConfig::powergraph_async();
        assert_eq!(effective_transport(&cfg), TransportKind::Tcp);
    }

    #[test]
    fn loopback_ports_are_distinct() {
        let addrs = alloc_loopback_addrs(8).expect("alloc");
        let set: std::collections::HashSet<_> = addrs.iter().collect();
        assert_eq!(set.len(), 8);
        for a in &addrs {
            assert!(a.starts_with("127.0.0.1:"));
        }
    }
}
