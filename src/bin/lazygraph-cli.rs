//! `lazygraph-cli` — run LazyGraph algorithms on graph files or built-in
//! dataset analogues from the command line.
//!
//! ```text
//! lazygraph-cli run  --input <file.el|file.mtx|dataset:NAME> --algorithm sssp
//!                    [--engine lazy|sync|async|lazy-vertex|hybrid|delta] [--machines 8]
//!                    [--partition coordinated|random|grid|hybrid|adversarial-hubs]
//!                    [--hub-fanout N] [--hub-degree-threshold D]
//!                    [--rebalance-every K] [--rebalance-ratio MILLI] [--rebalance-max-moves N]
//!                    [--delta-buckets 16] [--delta-tolerance 1e-3]
//!                    [--source 0] [--k 3] [--tolerance 1e-3] [--scale 0.1]
//!                    [--threads N] [--block-size 1024]
//!                    [--transport inproc|tcp] [--multiprocess] [--pipeline]
//!                    [--no-adaptive-parts]
//!                    [--checkpoint-every K] [--rejoin-window-ms MS] [--respawn-budget N]
//!                    [--symmetrize] [--weights LO:HI] [--output values.txt]
//! lazygraph-cli info --input <...> [--machines 48] [--scale 0.1]
//! lazygraph-cli generate --kind rmat|road|web|social --vertices N --out FILE
//! ```

use std::process::exit;

use lazygraph::multiproc::{run_multiprocess_with, AlgoSpec, MpOptions, MultiprocOutcome};
use lazygraph::prelude::*;
use lazygraph_engine::TransportKind;
use lazygraph_algorithms::{
    reference, Bfs, ConnectedComponents, KCore, PageRankDelta, Sssp, WidestPath,
};
use lazygraph_graph::generators::{grid2d, rmat, web_crawl, Grid2dConfig, RmatConfig, WebCrawlConfig};
use lazygraph_graph::{graph_stats, io as gio, mtx, Dataset};

fn usage() -> ! {
    eprintln!(
        "usage:\n  lazygraph-cli run --input <file|dataset:NAME> --algorithm \
         <sssp|pagerank|cc|kcore|bfs|widest> [options]\n  lazygraph-cli info --input <file|dataset:NAME>\n  \
         lazygraph-cli generate --kind <rmat|road|web|social> --vertices N --out FILE\n\
         datasets: uk2005 web-google road-usa roadnet-ca twitter livejournal enwiki youtube"
    );
    exit(2);
}

struct Opts {
    values: std::collections::HashMap<String, String>,
    flags: std::collections::HashSet<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut values = std::collections::HashMap::new();
        let mut flags = std::collections::HashSet::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                eprintln!("unexpected argument {a}");
                usage();
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_string(), it.next().unwrap().clone());
                }
                _ => {
                    flags.insert(key.to_string());
                }
            }
        }
        Opts { values, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{key}: cannot parse {v}");
                exit(2);
            }),
            None => default,
        }
    }
}

fn dataset_by_name(name: &str) -> Option<Dataset> {
    Some(match name.to_ascii_lowercase().as_str() {
        "uk2005" | "uk-2005" => Dataset::Uk2005Like,
        "web-google" | "google" => Dataset::WebGoogleLike,
        "road-usa" | "roadusa" => Dataset::RoadUsaLike,
        "roadnet-ca" | "roadnet" => Dataset::RoadNetCaLike,
        "twitter" => Dataset::TwitterLike,
        "livejournal" | "lj" => Dataset::LiveJournalLike,
        "enwiki" | "wiki" => Dataset::EnwikiLike,
        "youtube" | "com-youtube" => Dataset::ComYoutubeLike,
        _ => return None,
    })
}

fn load_input(opts: &Opts) -> Graph {
    let input = opts.get("input").unwrap_or_else(|| usage());
    let scale: f64 = opts.parse_num("scale", 0.1);
    let mut graph = if let Some(name) = input.strip_prefix("dataset:") {
        let ds = dataset_by_name(name).unwrap_or_else(|| {
            eprintln!("unknown dataset {name}");
            usage();
        });
        if opts.flags.contains("symmetrize") {
            ds.build_symmetric(scale)
        } else {
            ds.build(scale)
        }
    } else if input.ends_with(".mtx") {
        mtx::load_matrix_market(input).unwrap_or_else(|e| {
            eprintln!("failed to load {input}: {e}");
            exit(1);
        })
    } else {
        gio::load_edge_list(input, None).unwrap_or_else(|e| {
            eprintln!("failed to load {input}: {e}");
            exit(1);
        })
    };
    let needs_symmetrize =
        opts.flags.contains("symmetrize") && !graph.is_symmetric();
    let weights = opts.get("weights").map(|w| {
        let (lo, hi) = w.split_once(':').unwrap_or_else(|| {
            eprintln!("--weights needs LO:HI");
            exit(2);
        });
        (
            lo.parse::<f32>().expect("weights lo"),
            hi.parse::<f32>().expect("weights hi"),
        )
    });
    if needs_symmetrize || weights.is_some() {
        let mut b = GraphBuilder::new(graph.num_vertices());
        b.extend(graph.edges());
        if needs_symmetrize {
            b.symmetrize();
        }
        if let Some((lo, hi)) = weights {
            b.randomize_weights(lo, hi, 0xC11);
        }
        graph = b.build();
    }
    graph
}

fn engine_config(opts: &Opts) -> EngineConfig {
    let engine = match opts.get_or("engine", "lazy").as_str() {
        "lazy" | "lazy-block" => EngineKind::LazyBlockAsync,
        "sync" | "powergraph-sync" => EngineKind::PowerGraphSync,
        "async" | "powergraph-async" => EngineKind::PowerGraphAsync,
        "lazy-vertex" => EngineKind::LazyVertexAsync,
        "hybrid" | "powerswitch" => EngineKind::PowerSwitchHybrid,
        "delta" | "delta-accum" => EngineKind::DeltaAccum,
        other => {
            eprintln!("unknown engine {other}");
            usage();
        }
    };
    let partition = match opts.get_or("partition", "coordinated").as_str() {
        "coordinated" => PartitionStrategy::Coordinated,
        "random" => PartitionStrategy::Random,
        "grid" => PartitionStrategy::Grid,
        "hybrid" => PartitionStrategy::Hybrid,
        "adversarial-hubs" => PartitionStrategy::AdversarialHubs,
        other => {
            eprintln!("unknown partition strategy {other}");
            usage();
        }
    };
    let mut cfg = EngineConfig::lazygraph()
        .with_engine(engine)
        .with_partition(partition)
        .with_threads(opts.parse_num("threads", 0usize))
        .with_block_size(opts.parse_num("block-size", lazygraph_engine::DEFAULT_BLOCK_SIZE));
    if opts.flags.contains("bidirectional") {
        cfg = cfg.with_bidirectional(true);
    }
    if opts.flags.contains("history") {
        cfg.record_history = true;
    }
    if opts.flags.contains("pipeline") {
        cfg = cfg.with_pipeline(true);
    }
    if opts.flags.contains("no-adaptive-parts") {
        cfg = cfg.with_adaptive_parts(false);
    }
    if let Some(b) = opts.get("delta-buckets") {
        let buckets: usize = b.parse().unwrap_or_else(|_| {
            eprintln!("--delta-buckets: cannot parse {b}");
            exit(2);
        });
        cfg = cfg.with_delta_buckets(buckets);
    }
    if let Some(t) = opts.get("delta-tolerance") {
        let tol: f64 = t.parse().unwrap_or_else(|_| {
            eprintln!("--delta-tolerance: cannot parse {t}");
            exit(2);
        });
        cfg = cfg.with_delta_tolerance(tol);
    }
    if let Some(t) = opts.get("transport") {
        let kind: TransportKind = t.parse().unwrap_or_else(|e: String| {
            eprintln!("--transport: {e}");
            exit(2);
        });
        cfg = cfg.with_transport(kind);
    }
    // Skew handling (DESIGN.md §16): degree-aware hub fan-out at partition
    // time, and online live migration at coherency barriers.
    let fanout: usize = opts.parse_num("hub-fanout", 0usize);
    if fanout > 0 || opts.get("hub-degree-threshold").is_some() {
        cfg = cfg.with_hub_fanout(lazygraph_partition::HubFanoutConfig {
            degree_threshold: opts
                .get("hub-degree-threshold")
                .map(|_| opts.parse_num("hub-degree-threshold", 0usize)),
            fanout: if fanout > 0 { fanout } else { usize::MAX },
        });
    }
    let every: u64 = opts.parse_num("rebalance-every", 0u64);
    if every > 0 {
        cfg = cfg.with_rebalance(lazygraph_engine::RebalanceConfig::enabled(
            every,
            opts.parse_num("rebalance-ratio", 1500u64),
            opts.parse_num("rebalance-max-moves", 16usize),
        ));
    }
    cfg
}

/// Prints the skew/migration summary for a finished run, when the run
/// actually checked balance (`--rebalance-every` on).
fn print_skew(stats: &lazygraph_cluster::StatsSnapshot) {
    if stats.rebalance_checks == 0 {
        return;
    }
    println!(
        "load ratio (max/mean, milli): mean {} max {} over {} checks; \
         {} vertices migrated, {} migrate frames",
        stats.load_ratio_sum_milli / stats.rebalance_checks,
        stats.load_ratio_max_milli,
        stats.rebalance_checks,
        stats.migrated_vertices,
        stats.migrate_frames,
    );
}

fn write_values<T: std::fmt::Display>(opts: &Opts, values: &[T]) {
    if let Some(path) = opts.get("output") {
        let body: String = values
            .iter()
            .enumerate()
            .map(|(v, x)| format!("{v}\t{x}\n"))
            .collect();
        std::fs::write(path, body).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        println!("wrote {} values to {path}", values.len());
    }
}

/// Locates the `lazygraph-worker` binary next to the running CLI.
fn worker_bin() -> std::path::PathBuf {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate current executable: {e}");
        exit(1);
    });
    let name = if cfg!(windows) {
        "lazygraph-worker.exe"
    } else {
        "lazygraph-worker"
    };
    exe.with_file_name(name)
}

/// Launches a multiprocess run and prints its summary line; returns the
/// final vertex values.
fn mp_run<P: VertexProgram>(
    graph: &Graph,
    machines: usize,
    cfg: &EngineConfig,
    spec: &AlgoSpec,
    mp: &MpOptions,
) -> Vec<P::VData> {
    let out: MultiprocOutcome<P::VData> =
        run_multiprocess_with::<P>(graph, machines, cfg, spec, &worker_bin(), mp)
            .unwrap_or_else(|e| {
                eprintln!("multiprocess run failed: {e}");
                exit(1);
            });
    println!(
        "multiprocess {} workers: {} iterations, converged={}, sim_time {:.4}s, \
         est {} B (cost model), wire {} B sent / {} frames (measured)",
        machines,
        out.iterations,
        out.converged,
        out.sim_time,
        out.stats.total_est_bytes(),
        out.stats.wire_bytes_sent,
        out.stats.wire_frames_sent,
    );
    if mp.checkpoint_every > 0 {
        println!(
            "recovery: {} snapshot B written, {} reconnects, {} rounds replayed",
            out.stats.snapshot_bytes, out.stats.reconnects, out.stats.replay_rounds,
        );
    }
    print_skew(&out.stats);
    out.values
}

fn cmd_run_multiprocess(opts: &Opts, graph: &Graph, machines: usize, cfg: &EngineConfig) {
    let algorithm = opts.get("algorithm").unwrap_or_else(|| usage());
    // `--failpoint RANK:SPEC` (e.g. `1:superstep:3`) arms a deterministic
    // crash in one worker — chaos testing for the recovery path
    // (DESIGN.md §12); requires `--checkpoint-every` so the launcher
    // respawns the victim.
    let failpoint = opts.get("failpoint").map(|s| {
        let Some((rank, spec)) = s.split_once(':') else {
            eprintln!("--failpoint needs RANK:SPEC (e.g. 1:superstep:3)");
            exit(2);
        };
        let rank = rank.parse().unwrap_or_else(|_| {
            eprintln!("--failpoint: cannot parse rank {rank}");
            exit(2);
        });
        (rank, spec.to_string())
    });
    let mp = MpOptions {
        checkpoint_every: opts.parse_num("checkpoint-every", 0u64),
        rejoin_window_ms: opts.parse_num("rejoin-window-ms", 0u64),
        respawn_budget: opts.parse_num("respawn-budget", 2u32),
        failpoint,
    };
    let mp = &mp;
    match algorithm {
        "sssp" => {
            let spec = AlgoSpec::Sssp {
                source: opts.parse_num("source", 0u32),
            };
            let values = mp_run::<Sssp>(graph, machines, cfg, &spec, mp);
            write_values(opts, &values);
        }
        "bfs" => {
            let spec = AlgoSpec::Bfs {
                source: opts.parse_num("source", 0u32),
            };
            let values = mp_run::<Bfs>(graph, machines, cfg, &spec, mp);
            write_values(opts, &values);
        }
        "widest" => {
            let spec = AlgoSpec::Widest {
                source: opts.parse_num("source", 0u32),
            };
            let values = mp_run::<WidestPath>(graph, machines, cfg, &spec, mp);
            write_values(opts, &values);
        }
        "pagerank" => {
            let spec = AlgoSpec::PageRank {
                tolerance: opts.parse_num("tolerance", 1e-3),
            };
            let values = mp_run::<PageRankDelta>(graph, machines, cfg, &spec, mp);
            let ranks: Vec<String> = values.iter().map(|d| format!("{:.6}", d.rank)).collect();
            write_values(opts, &ranks);
        }
        "cc" => {
            let cfg = cfg.clone().with_bidirectional(true);
            let values = mp_run::<ConnectedComponents>(graph, machines, &cfg, &AlgoSpec::Cc, mp);
            let components: std::collections::HashSet<_> = values.iter().collect();
            println!("{} connected components", components.len());
            write_values(opts, &values);
        }
        "kcore" => {
            let k: u32 = opts.parse_num("k", 3);
            let cfg = cfg.clone().with_bidirectional(true);
            let values = mp_run::<KCore>(graph, machines, &cfg, &AlgoSpec::KCore { k }, mp);
            let survivors = values.iter().filter(|&&c| c > 0).count();
            println!("{survivors} vertices in the {k}-core");
            write_values(opts, &values);
        }
        other => {
            eprintln!("unknown algorithm {other}");
            usage();
        }
    }
}

fn cmd_run(opts: &Opts) {
    let graph = load_input(opts);
    let machines: usize = opts.parse_num("machines", 8);
    let cfg = engine_config(opts);
    let algorithm = opts.get("algorithm").unwrap_or_else(|| usage());
    println!(
        "running {algorithm} on {} vertices / {} edges, {} machines, engine {}",
        graph.num_vertices(),
        graph.num_edges(),
        machines,
        cfg.engine.name()
    );
    if opts.flags.contains("multiprocess") {
        return cmd_run_multiprocess(opts, &graph, machines, &cfg);
    }
    match algorithm {
        "sssp" => {
            let source = VertexId(opts.parse_num("source", 0u32));
            let r = run(&graph, machines, &cfg, &Sssp::new(source)).expect("cluster run");
            println!("{}", r.metrics.summary());
            print_skew(&r.metrics.stats);
            write_values(opts, &r.values);
        }
        "bfs" => {
            let source = VertexId(opts.parse_num("source", 0u32));
            let r = run(&graph, machines, &cfg, &Bfs::new(source)).expect("cluster run");
            println!("{}", r.metrics.summary());
            print_skew(&r.metrics.stats);
            write_values(opts, &r.values);
        }
        "widest" => {
            let source = VertexId(opts.parse_num("source", 0u32));
            let r = run(&graph, machines, &cfg, &WidestPath::new(source)).expect("cluster run");
            println!("{}", r.metrics.summary());
            print_skew(&r.metrics.stats);
            write_values(opts, &r.values);
        }
        "pagerank" => {
            let tolerance: f64 = opts.parse_num("tolerance", 1e-3);
            let r = run(&graph, machines, &cfg, &PageRankDelta { tolerance }).expect("cluster run");
            println!("{}", r.metrics.summary());
            print_skew(&r.metrics.stats);
            let ranks: Vec<String> = r.values.iter().map(|d| format!("{:.6}", d.rank)).collect();
            write_values(opts, &ranks);
        }
        "cc" => {
            let cfg = cfg.with_bidirectional(true);
            let r = run(&graph, machines, &cfg, &ConnectedComponents).expect("cluster run");
            println!("{}", r.metrics.summary());
            print_skew(&r.metrics.stats);
            let components: std::collections::HashSet<_> = r.values.iter().collect();
            println!("{} connected components", components.len());
            write_values(opts, &r.values);
        }
        "kcore" => {
            let k: u32 = opts.parse_num("k", 3);
            let cfg = cfg.with_bidirectional(true);
            let r = run(&graph, machines, &cfg, &KCore::new(k)).expect("cluster run");
            println!("{}", r.metrics.summary());
            print_skew(&r.metrics.stats);
            let survivors = r.values.iter().filter(|&&c| c > 0).count();
            println!("{survivors} vertices in the {k}-core");
            write_values(opts, &r.values);
        }
        other => {
            eprintln!("unknown algorithm {other}");
            usage();
        }
    }
}

fn cmd_info(opts: &Opts) {
    let graph = load_input(opts);
    let machines: usize = opts.parse_num("machines", 48);
    let s = graph_stats(&graph);
    println!("vertices:        {}", s.num_vertices);
    println!("edges:           {}", s.num_edges);
    println!("E/V:             {:.2}", s.ev_ratio);
    println!("max out-degree:  {}", s.max_out_degree);
    println!("max in-degree:   {}", s.max_in_degree);
    println!("top-1% share:    {:.3}", s.top1pct_edge_share);
    println!("symmetric:       {}", graph.is_symmetric());
    let cfg = engine_config(opts);
    let dg = lazygraph_partition::partition_graph(
        &graph,
        machines,
        cfg.partition,
        &cfg.splitter,
        cfg.bidirectional,
    );
    println!(
        "lambda:          {:.2}  ({} partitions, {} cut)",
        dg.lambda(),
        machines,
        cfg.partition.name()
    );
    println!("parallel edges:  {}", dg.num_parallel_edges);
    println!("storage overhead:{:.3}", dg.storage_overhead());
    let levels = reference::bfs_levels(&graph, VertexId(0));
    let reachable = levels.iter().filter(|&&l| l != u32::MAX).count();
    println!(
        "reach from v0:   {} vertices, eccentricity {}",
        reachable,
        levels.iter().filter(|&&l| l != u32::MAX).max().unwrap_or(&0)
    );
}

fn cmd_generate(opts: &Opts) {
    let out = opts.get("out").unwrap_or_else(|| usage());
    let n: usize = opts.parse_num("vertices", 10_000);
    let seed: u64 = opts.parse_num("seed", 42);
    let graph = match opts.get_or("kind", "rmat").as_str() {
        "rmat" | "social" => {
            let scale = (n.max(64) as f64).log2().round() as u32;
            rmat(RmatConfig::graph500(scale, 16, seed))
        }
        "road" => {
            let side = (n as f64).sqrt().round().max(8.0) as usize;
            grid2d(Grid2dConfig::road(side, side, seed))
        }
        "web" => web_crawl(WebCrawlConfig::uk_flavour(n, seed)),
        other => {
            eprintln!("unknown kind {other}");
            usage();
        }
    };
    let result = if out.ends_with(".mtx") {
        mtx::save_matrix_market(&graph, out)
    } else {
        gio::save_edge_list(&graph, out)
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!(
        "wrote {} vertices / {} edges to {out}",
        graph.num_vertices(),
        graph.num_edges()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let opts = Opts::parse(rest);
    match cmd.as_str() {
        "run" => cmd_run(&opts),
        "info" => cmd_info(&opts),
        "generate" => cmd_generate(&opts),
        _ => usage(),
    }
}
