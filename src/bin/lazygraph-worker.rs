//! One machine of a multiprocess LazyGraph run (DESIGN.md §10).
//!
//! Spawned by [`lazygraph::multiproc::run_multiprocess`] (or the CLI's
//! `--multiprocess` flag) as `lazygraph-worker --job J --me I --out R`:
//! decodes the Wire-encoded [`WorkerJob`], deterministically rebuilds and
//! re-partitions the graph (so all workers agree on placement without
//! shipping shard structures), joins the control and data TCP meshes over
//! loopback, runs its machine loop, and writes its Wire-encoded result —
//! `MachineOut ++ StatsSnapshot ++ SimBreakdown` — to the output path.
//!
//! Exit status 0 means the result file is complete; any failure prints to
//! stderr and exits 1, which the launcher surfaces as
//! `MultiprocError::Worker`. A worker dying mid-run poisons its peers'
//! mesh legs, so the whole gang fails fast instead of hanging.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use parking_lot::Mutex;

use lazygraph::multiproc::{AlgoSpec, WorkerJob};
use lazygraph_algorithms::{Bfs, ConnectedComponents, KCore, PageRankDelta, Sssp, WidestPath};
use lazygraph_cluster::{connect_tcp_endpoint, reconnect_tcp_endpoint, Collective, NetStats};
use lazygraph_engine::checkpoint::{EngineSnapshot, RecoveryCfg, SnapshotStore};
use lazygraph_engine::delta_engine::{run_delta_machine, DeltaParams};
use lazygraph_engine::lazy_block::{self, LazyParams};
use lazygraph_engine::sync_engine::{self, SyncMsg};
use lazygraph_engine::{EngineKind, ParallelConfig, SimBreakdown, VertexProgram};
use lazygraph_graph::{Edge, GraphBuilder, VertexId};
use lazygraph_net::{TcpOptions, Wire};
use lazygraph_partition::partition_graph_with;

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lazygraph-worker: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Args {
    job: PathBuf,
    me: usize,
    out: PathBuf,
    /// Rejoin an already-running gang: load the latest valid snapshot (if
    /// any), reconnect both meshes at the recorded round watermarks, and
    /// replay forward (DESIGN.md §12).
    resume: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut job = None;
    let mut me = None;
    let mut out = None;
    let mut resume = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--job" => job = Some(PathBuf::from(val()?)),
            "--me" => {
                me = Some(
                    val()?
                        .parse::<usize>()
                        .map_err(|e| format!("bad --me: {e}"))?,
                )
            }
            "--out" => out = Some(PathBuf::from(val()?)),
            "--resume" => resume = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        job: job.ok_or("missing --job")?,
        me: me.ok_or("missing --me")?,
        out: out.ok_or("missing --out")?,
        resume,
    })
}

fn real_main() -> Result<(), String> {
    let args = parse_args()?;
    let bytes = std::fs::read(&args.job)
        .map_err(|e| format!("reading job file {}: {e}", args.job.display()))?;
    let job = WorkerJob::from_wire(&bytes).map_err(|e| format!("decoding job: {e}"))?;
    if args.me >= job.num_machines {
        return Err(format!(
            "--me {} out of range for {} machines",
            args.me, job.num_machines
        ));
    }
    match job.algo.clone() {
        AlgoSpec::PageRank { tolerance } => run_worker(&job, args, PageRankDelta { tolerance }),
        AlgoSpec::Sssp { source } => run_worker(&job, args, Sssp::new(source)),
        AlgoSpec::Bfs { source } => run_worker(&job, args, Bfs::new(source)),
        AlgoSpec::Cc => run_worker(&job, args, ConnectedComponents),
        AlgoSpec::KCore { k } => run_worker(&job, args, KCore::new(k)),
        AlgoSpec::Widest { source } => run_worker(&job, args, WidestPath::new(source)),
    }
}

fn parse_addrs(addrs: &[String]) -> Result<Vec<SocketAddr>, String> {
    addrs
        .iter()
        .map(|a| a.parse().map_err(|e| format!("bad mesh address {a}: {e}")))
        .collect()
}

/// Runs this worker's machine and writes the result file.
fn run_worker<P: VertexProgram>(job: &WorkerJob, args: Args, program: P) -> Result<(), String> {
    let me = args.me;
    let data_addrs = parse_addrs(&job.data_addrs)?;
    let ctrl_addrs = parse_addrs(&job.ctrl_addrs)?;

    // Rebuild the graph exactly: same vertex count, same edge order, same
    // weight bit patterns — then the deterministic partitioner puts every
    // worker in agreement on placement.
    let mut builder = GraphBuilder::new(job.num_vertices);
    builder.extend(job.edges.iter().map(|&(s, d, w)| Edge {
        src: VertexId(s),
        dst: VertexId(d),
        weight: w,
    }));
    let graph = builder.build();
    let dg = partition_graph_with(
        &graph,
        job.num_machines,
        job.partition,
        &job.splitter,
        &job.hub_fanout,
        job.bidirectional,
    );
    let shard = &dg.shards[me];

    let stats = Arc::new(NetStats::default());
    let breakdown = Arc::new(Mutex::new(SimBreakdown::default()));
    let par = ParallelConfig {
        threads: job.threads_per_machine.max(1),
        block_size: job.block_size.max(1),
    };
    let recovery_on = job.checkpoint_every > 0 && !job.checkpoint_dir.is_empty();
    let mut opts = TcpOptions::default();
    if recovery_on && job.rejoin_window_ms > 0 {
        opts.rejoin_window = Some(std::time::Duration::from_millis(job.rejoin_window_ms));
    }
    let store = recovery_on.then(|| SnapshotStore::new(&job.checkpoint_dir, me));

    // A resumed worker loads its newest valid snapshot; `None` (crashed
    // before the first checkpoint) means a fresh start at watermark 0 —
    // peers still hold their full replay logs in that case, because log
    // pruning only ever happens at a completed checkpoint barrier.
    let resume_snap: Option<EngineSnapshot<P>> = if args.resume {
        match &store {
            Some(s) => s
                .load_latest::<P>()
                .map_err(|e| format!("loading snapshot: {e}"))?,
            None => return Err("--resume without checkpointing configured".into()),
        }
    } else {
        None
    };
    if let Some(s) = &resume_snap {
        let want = match job.engine {
            EngineKind::PowerGraphSync => 0u8,
            EngineKind::LazyBlockAsync => 1u8,
            EngineKind::DeltaAccum => 2u8,
            _ => u8::MAX,
        };
        if s.engine != want {
            return Err(format!(
                "snapshot engine tag {} does not match configured engine {}",
                s.engine,
                job.engine.name()
            ));
        }
    }
    let (data_round, ctrl_round) = resume_snap
        .as_ref()
        .map(|s| (s.data_round, s.ctrl_round))
        .unwrap_or((0, 0));

    // Mesh establishment order is part of the protocol: every worker
    // joins the control mesh first, then the engine-typed data mesh.
    let ctrl_ep = if args.resume {
        reconnect_tcp_endpoint::<u8>(me, &ctrl_addrs, ctrl_round, &stats, &opts)
    } else {
        connect_tcp_endpoint::<u8>(me, &ctrl_addrs, &stats, &opts)
    }
    .map_err(|e| format!("control mesh: {e}"))?;
    let coll = Arc::new(Collective::mesh(ctrl_ep));

    let recovery = RecoveryCfg {
        every: job.checkpoint_every,
        store,
        resume: resume_snap,
    };

    let mut result = Vec::new();
    match job.engine {
        EngineKind::PowerGraphSync => {
            let ep = if args.resume {
                reconnect_tcp_endpoint::<(u32, SyncMsg<P>)>(
                    me,
                    &data_addrs,
                    data_round,
                    &stats,
                    &opts,
                )
            } else {
                connect_tcp_endpoint::<(u32, SyncMsg<P>)>(me, &data_addrs, &stats, &opts)
            }
            .map_err(|e| format!("data mesh: {e}"))?;
            let out = sync_engine::run_sync_machine(
                shard,
                ep,
                coll,
                &program,
                dg.num_global_vertices,
                job.cost,
                job.max_iterations,
                par,
                job.exchange_fast,
                job.pipeline,
                job.adaptive_parts,
                stats.clone(),
                breakdown.clone(),
                recovery,
            )
            .map_err(|e| format!("sync machine {me}: {e}"))?;
            out.encode(&mut result);
        }
        EngineKind::LazyBlockAsync => {
            let params = LazyParams {
                cost: job.cost,
                max_iterations: job.max_iterations,
                comm_mode: job.comm_mode,
                interval: job.interval,
                delta_suppression: job.delta_suppression,
                record_history: false,
                exchange_fast: job.exchange_fast,
                pipeline: job.pipeline,
                adaptive_parts: job.adaptive_parts,
                rebalance: job.rebalance,
            };
            let ep = if args.resume {
                reconnect_tcp_endpoint::<(u32, P::Delta)>(
                    me,
                    &data_addrs,
                    data_round,
                    &stats,
                    &opts,
                )
            } else {
                connect_tcp_endpoint::<(u32, P::Delta)>(me, &data_addrs, &stats, &opts)
            }
            .map_err(|e| format!("data mesh: {e}"))?;
            let out = lazy_block::run_lazy_block_machine(
                me,
                shard,
                ep,
                coll,
                &program,
                dg.num_global_vertices,
                dg.ev_ratio,
                params,
                par,
                stats.clone(),
                breakdown.clone(),
                recovery,
            )
            .map_err(|e| format!("lazy machine {me}: {e}"))?;
            if std::env::var_os("LAZYGRAPH_MP_DEBUG").is_some() {
                eprintln!(
                    "worker {me}: iters={} converged={} counters={:?}",
                    out.iterations, out.converged, out.counters
                );
            }
            out.encode(&mut result);
        }
        EngineKind::DeltaAccum => {
            let params = DeltaParams {
                cost: job.cost,
                max_iterations: job.max_iterations,
                num_buckets: job.delta_buckets,
                tolerance: job.delta_tolerance,
                delta_suppression: job.delta_suppression,
                exchange_fast: job.exchange_fast,
                pipeline: job.pipeline,
                adaptive_parts: job.adaptive_parts,
            };
            let ep = if args.resume {
                reconnect_tcp_endpoint::<(u32, P::Delta)>(
                    me,
                    &data_addrs,
                    data_round,
                    &stats,
                    &opts,
                )
            } else {
                connect_tcp_endpoint::<(u32, P::Delta)>(me, &data_addrs, &stats, &opts)
            }
            .map_err(|e| format!("data mesh: {e}"))?;
            let out = run_delta_machine(
                me,
                shard,
                ep,
                coll,
                &program,
                dg.num_global_vertices,
                params,
                par,
                stats.clone(),
                breakdown.clone(),
                recovery,
            )
            .map_err(|e| format!("delta machine {me}: {e}"))?;
            if std::env::var_os("LAZYGRAPH_MP_DEBUG").is_some() {
                eprintln!(
                    "worker {me}: epochs={} converged={} counters={:?}",
                    out.iterations, out.converged, out.counters
                );
            }
            out.encode(&mut result);
        }
        other => {
            return Err(format!(
                "engine {} cannot run multiprocess (shared-memory termination)",
                other.name()
            ))
        }
    }

    // Result file layout: MachineOut ++ StatsSnapshot ++ SimBreakdown.
    // The snapshot is taken after the run; detached writer proxies may
    // still flush shutdown frames, so frame counters are best-effort.
    stats.snapshot().encode(&mut result);
    breakdown.lock().encode(&mut result);
    std::fs::write(&args.out, &result)
        .map_err(|e| format!("writing result {}: {e}", args.out.display()))?;
    Ok(())
}
