//! # LazyGraph
//!
//! A Rust reproduction of *LazyGraph: Lazy Data Coherency for Replicas in
//! Distributed Graph-Parallel Computation* (Wang et al., PPoPP 2018).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — graph structures, loaders, synthetic dataset analogues;
//! * [`partition`] — vertex-cut partitioners, the edge splitter, shards;
//! * [`cluster`] — the simulated cluster substrate (machines, exchanges,
//!   barriers, deterministic cost model);
//! * [`engine`] — PowerGraph Sync/Async baselines and the LazyAsync
//!   engines, with the adaptive interval and comm-mode optimisations;
//! * [`algorithms`] — PageRank-Delta, SSSP, CC, k-core, BFS + references;
//! * [`net`] — the wire codec and framed-TCP transport (DESIGN.md §10);
//! * [`multiproc`] — the multiprocess worker launcher (N OS processes
//!   over a loopback TCP mesh, bitwise-identical results).
//!
//! ## Quickstart
//!
//! ```
//! use lazygraph::prelude::*;
//!
//! // A small road-like graph, PageRank on 4 simulated machines.
//! let graph = lazygraph::graph::generators::grid2d(
//!     lazygraph::graph::generators::Grid2dConfig::road(16, 16, 42),
//! );
//! let cfg = EngineConfig::lazygraph();
//! let result = run(&graph, 4, &cfg, &PageRankDelta::default()).expect("cluster run");
//! assert!(result.metrics.converged);
//! assert_eq!(result.values.len(), graph.num_vertices());
//! ```

pub use lazygraph_algorithms as algorithms;
pub use lazygraph_cluster as cluster;
pub use lazygraph_engine as engine;
pub use lazygraph_graph as graph;
pub use lazygraph_net as net;
pub use lazygraph_partition as partition;

pub mod multiproc;

/// The most common imports in one place.
pub mod prelude {
    pub use lazygraph_algorithms::{Bfs, ConnectedComponents, KCore, PageRankDelta, Sssp};
    pub use lazygraph_engine::{
        run, run_on, CommError, CommModePolicy, EngineConfig, EngineKind, IntervalPolicy,
        RebalanceConfig, RunMetrics, RunResult, VertexProgram, DEFAULT_BLOCK_SIZE,
    };
    pub use lazygraph_graph::{Dataset, Edge, Graph, GraphBuilder, MachineId, VertexId};
    pub use lazygraph_partition::{HubFanoutConfig, PartitionStrategy, SplitterConfig};
}
